"""Software runtimes: the reference interpreters for specifications.

Three interpreters over the same :class:`~repro.core.spec.ApplicationSpec`:

* :class:`SequentialRuntime` — Definition 4.3: repeatedly apply the minimum
  active task.  Rules trivially resolve through their otherwise clause (the
  running task is always the minimum), so sequential semantics need no rule
  machinery — exactly why the paper calls rules pure parallelization
  artifacts.
* :class:`SpeculativeRuntime` / :class:`CoordinativeRuntime` — the
  "pure software runtime ... to help programmers debug applications" of
  Section 4.4: W abstract workers advance in-flight tasks one primitive op
  per step, events are broadcast to live rules, and rendezvous block until
  rules return.  This exposes the interleavings the FPGA pipelines create,
  without timing.

All interpreters share :class:`TaskExecution`, the micro-thread that steps a
task body's primitive ops functionally against the MemorySpace.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.events import Event, EventKind
from repro.core.indexing import TaskIndex
from repro.core.kernel import (
    AllocRule,
    Alu,
    Call,
    Const,
    Enqueue,
    Expand,
    Guard,
    Kernel,
    Label,
    Load,
    Op,
    Rendezvous,
    Store,
)
from repro.core.rule import RuleInstance
from repro.core.spec import ApplicationSpec, IndexMinter, SeedTask
from repro.core.state import MemorySpace
from repro.core.task import TaskInstance
from repro.errors import SchedulingError, SimulationError


@dataclass
class RuntimeStats:
    """Execution statistics shared by all software runtimes."""

    tasks_executed: int = 0
    tasks_committed: int = 0
    tasks_squashed: int = 0
    tasks_guard_dropped: int = 0
    events_broadcast: int = 0
    rules_allocated: int = 0
    otherwise_fired: int = 0
    clause_fired: int = 0
    steps: int = 0

    @property
    def squash_fraction(self) -> float:
        total = self.tasks_committed + self.tasks_squashed
        return self.tasks_squashed / total if total else 0.0


class _Status:
    RUNNING = "running"
    WAITING = "waiting"   # blocked at a rendezvous
    DONE = "done"


class TaskExecution:
    """A micro-thread stepping one task's kernel ops.

    Control state is (current op list, pc, current env); Expand pushes
    sibling envs that re-enter at the op after the expand; Guard/Rendezvous
    false-paths run a short epilogue before the env dies.
    """

    def __init__(self, runtime: "_BaseRuntime", task: TaskInstance) -> None:
        self.runtime = runtime
        self.task = task
        self.kernel: Kernel = runtime.spec.kernels[task.task_set]
        self.env: dict[str, Any] = dict(task.data)
        self.pc = 0
        self.ops: list[Op] = list(self.kernel.ops)
        self.pending_envs: list[tuple[dict[str, Any], int]] = []
        self.pending_rules: list[RuleInstance] = []
        self.status = _Status.RUNNING
        self.waiting_label = ""
        self.committed = True  # flips false if any env squashes
        self.order_released = False  # a completes_task Call has executed
        self._epilogue: list[Op] | None = None
        self._epilogue_pc = 0

    # -- queries --------------------------------------------------------------

    @property
    def index(self) -> TaskIndex:
        return self.task.index

    @property
    def done(self) -> bool:
        return self.status == _Status.DONE

    @property
    def waiting(self) -> bool:
        return self.status == _Status.WAITING

    # -- stepping ---------------------------------------------------------------

    def step(self) -> None:
        """Advance by (at least the attempt of) one primitive op."""
        if self.status == _Status.DONE:
            return
        if self._epilogue is not None:
            self._step_epilogue()
            return
        if self.pc >= len(self.ops):
            self._finish_env()
            return
        op = self.ops[self.pc]
        if isinstance(op, Rendezvous):
            self._step_rendezvous(op)
            return
        self.pc += 1
        self._execute_straight(op)

    def _step_epilogue(self) -> None:
        assert self._epilogue is not None
        if self._epilogue_pc >= len(self._epilogue):
            self._epilogue = None
            self._finish_env()
            return
        op = self._epilogue[self._epilogue_pc]
        self._epilogue_pc += 1
        self._execute_straight(op)

    def _step_rendezvous(self, op: Rendezvous) -> None:
        if not self.pending_rules:
            raise SchedulingError(
                f"task {self.task} reached rendezvous {op.label!r} "
                "with no allocated rule"
            )
        rule = self.pending_rules[0]
        if not rule.returned and rule.rule_type.immediate:
            rule.trigger_otherwise()
        if not rule.returned:
            self.status = _Status.WAITING
            self.waiting_label = op.label
            return
        self.pending_rules.pop(0)
        self.status = _Status.RUNNING
        self.waiting_label = ""
        self.runtime.release_rule(rule)
        self.pc += 1
        if rule.value:
            return  # commit path: continue with following ops
        self.committed = False
        self.runtime.stats.tasks_squashed += 1
        self._enter_epilogue(list(op.abort_ops))

    def _enter_epilogue(self, ops: list[Op]) -> None:
        self._epilogue = ops
        self._epilogue_pc = 0
        if not ops:
            self._epilogue = None
            self._finish_env()

    def _finish_env(self) -> None:
        """Current env is finished; resume a sibling env or complete."""
        # Squash any rules the dead env allocated but never met.
        for rule in self.pending_rules:
            self.runtime.release_rule(rule)
        self.pending_rules.clear()
        if self.pending_envs:
            self.env, self.pc = self.pending_envs.pop(0)
            self.status = _Status.RUNNING
            return
        self.status = _Status.DONE
        if self.committed:
            self.runtime.stats.tasks_committed += 1

    # -- straight-line op semantics ---------------------------------------------

    def _execute_straight(self, op: Op) -> None:
        runtime = self.runtime
        state = runtime.state
        env = self.env
        if isinstance(op, Const):
            env[op.dst] = op.value
        elif isinstance(op, Alu):
            env[op.dst] = op.fn(env)
        elif isinstance(op, Load):
            env[op.dst] = state.load(op.region, op.addr(env))
        elif isinstance(op, Store):
            addr = op.addr(env)
            value = op.value(env)
            if op.combine is not None or op.dst:
                old = state.load(op.region, addr)
                if op.dst:
                    env[op.dst] = old
                if op.combine is not None:
                    value = op.combine(old, value)
            state.store(op.region, addr, value)
            payload = {"addr": state.address(op.region, addr), "value": value}
            for name in op.extra_payload:
                payload[name] = env[name]
            runtime.broadcast(
                Event(EventKind.REACH, self.task.task_set,
                      op.label or op.region, self.index, payload),
                source=self,
            )
        elif isinstance(op, Guard):
            if not op.pred(env):
                runtime.stats.tasks_guard_dropped += 1
                self._enter_epilogue(list(op.else_ops))
        elif isinstance(op, Expand):
            items = list(op.items(env, state))
            resume_pc = self.pc
            if not items:
                self._finish_env()
                return
            first, *rest = items
            for extra in reversed(rest):
                child = dict(env)
                child.update(extra)
                self.pending_envs.insert(0, (child, resume_pc))
            env.update(first)
        elif isinstance(op, AllocRule):
            rule_type = runtime.spec.rules[op.resolve(env)]
            instance = rule_type.instantiate(self.index, dict(op.args(env)))
            runtime.register_rule(instance, owner=self)
            self.pending_rules.append(instance)
        elif isinstance(op, Enqueue):
            if op.when is None or op.when(env):
                runtime.activate(op.task_set, dict(op.fields(env)),
                                 parent=self.index, source=self)
        elif isinstance(op, Call):
            updates = op.fn(env, state)
            if updates:
                env.update(updates)
            if op.completes_task:
                self.order_released = True
            if op.label:
                runtime.broadcast(
                    Event(EventKind.REACH, self.task.task_set, op.label,
                          self.index, dict(env)),
                    source=self,
                )
        elif isinstance(op, Label):
            payload = {name: env[name] for name in op.payload} if op.payload \
                else dict(env)
            runtime.broadcast(
                Event(EventKind.REACH, self.task.task_set, op.label,
                      self.index, payload),
                source=self,
            )
        else:
            raise SimulationError(f"unknown op {op!r}")


class _BaseRuntime:
    """State shared by the sequential and aggressive interpreters."""

    def __init__(self, spec: ApplicationSpec) -> None:
        self.spec = spec
        self.state: MemorySpace = spec.make_state()
        self.minter: IndexMinter = spec.make_loop_nest()
        self.stats = RuntimeStats()
        self._heap: list[tuple[tuple, int, TaskInstance]] = []
        self._counter = itertools.count()
        self._live_rules: dict[int, tuple[RuleInstance, TaskExecution]] = {}
        self._rule_ids = itertools.count()
        self._rule_owner_uid: dict[int, int] = {}
        self._host_batches: Iterator[list[SeedTask]] | None = None
        if spec.host_feed is not None:
            self._host_batches = spec.host_feed.batches(self.state)

    # -- task activation --------------------------------------------------------

    def seed(self) -> None:
        for task_set, fields in self.spec.initial_tasks(self.state):
            self.activate(task_set, fields, parent=None, source=None)

    def activate(
        self,
        task_set: str,
        fields: dict[str, Any],
        parent: TaskIndex | None,
        source: TaskExecution | None,
    ) -> TaskInstance:
        index = self.minter.mint(task_set, fields, parent)
        task = TaskInstance(task_set, index, fields)
        heapq.heappush(self._heap, (task.sort_key(), next(self._counter), task))
        self.broadcast(
            Event(EventKind.ACTIVATE, task_set, "", index, dict(fields)),
            source=source,
        )
        return task

    def pop_min_active(self) -> TaskInstance | None:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def min_active_index(self) -> TaskIndex | None:
        return self._heap[0][2].index if self._heap else None

    @property
    def active_count(self) -> int:
        return len(self._heap)

    def feed_host_batch(self) -> bool:
        """Inject the next host batch; returns False when exhausted."""
        if self._host_batches is None:
            return False
        batch = next(self._host_batches, None)
        if batch is None:
            self._host_batches = None
            return False
        for task_set, fields in batch:
            self.activate(task_set, fields, parent=None, source=None)
        return True

    # -- rules and events ---------------------------------------------------------

    def register_rule(self, rule: RuleInstance, owner: TaskExecution) -> None:
        rule_id = next(self._rule_ids)
        self._live_rules[rule_id] = (rule, owner)
        self._rule_owner_uid[id(rule)] = owner.task.uid
        self.stats.rules_allocated += 1

    def release_rule(self, rule: RuleInstance) -> None:
        from repro.core.rule import RuleVerdict

        if rule.verdict is RuleVerdict.OTHERWISE:
            self.stats.otherwise_fired += 1
        elif rule.returned:
            self.stats.clause_fired += 1
        dead = [k for k, (r, _) in self._live_rules.items() if r is rule]
        for key in dead:
            del self._live_rules[key]
        self._rule_owner_uid.pop(id(rule), None)

    def broadcast(self, event: Event, source: TaskExecution | None) -> None:
        self.stats.events_broadcast += 1
        source_uid = source.task.uid if source is not None else None
        for rule, owner in list(self._live_rules.values()):
            if source_uid is not None and owner.task.uid == source_uid:
                continue  # a task's events never trigger its own rules
            rule.observe(event)

    def trigger_otherwise_for_minimum(self, min_live: TaskIndex | None) -> None:
        """Fire otherwise clauses whose waiting parent is (tied-)minimum.

        ``min_live`` is the minimum index over every live task — active in
        queues, executing, or waiting.  Firing only at the global minimum is
        the conservative policy that keeps speculation safe: the minimum
        task can never be invalidated by an earlier one.
        """
        for rule, owner in list(self._live_rules.values()):
            if not owner.waiting or rule.returned:
                continue
            if min_live is None or not min_live.earlier_than(rule.parent_index):
                rule.trigger_otherwise()


class SequentialRuntime(_BaseRuntime):
    """Definition 4.3: iteratively apply the minimum active task."""

    def run(self, max_tasks: int = 10_000_000) -> RuntimeStats:
        self.seed()
        executed = 0
        while True:
            task = self.pop_min_active()
            if task is None:
                if not self.feed_host_batch():
                    break
                continue
            execution = TaskExecution(self, task)
            while not execution.done:
                if execution.waiting:
                    # The sole running task is by construction the minimum,
                    # so the otherwise escape fires immediately.
                    execution.pending_rules[0].trigger_otherwise()
                    execution.status = _Status.RUNNING
                execution.step()
                self.stats.steps += 1
            executed += 1
            self.stats.tasks_executed += 1
            if executed >= max_tasks:
                raise SimulationError(
                    f"sequential run exceeded {max_tasks} tasks; "
                    "likely non-terminating specification"
                )
        self.spec.verify(self.state)
        return self.stats


class AggressiveRuntime(_BaseRuntime):
    """The multi-worker debug runtime of Section 4.4.

    ``workers`` abstract execution slots advance round-robin, one primitive
    op per step.  Dispatch pops the minimum active task (hardware pops FIFO
    per queue; for for-each sets activation order equals index order, so the
    two agree).
    """

    def __init__(self, spec: ApplicationSpec, workers: int = 8) -> None:
        super().__init__(spec)
        if workers < 1:
            raise SchedulingError("need at least one worker")
        self.workers = workers
        self.in_flight: list[TaskExecution] = []

    def min_live_index(self) -> TaskIndex | None:
        candidates = [
            e.index for e in self.in_flight
            if not e.done and not e.order_released
        ]
        active = self.min_active_index()
        if active is not None:
            candidates.append(active)
        return min(candidates) if candidates else None

    def run(self, max_steps: int = 50_000_000) -> RuntimeStats:
        self.seed()
        steps = 0
        while True:
            # Fill free workers with the earliest active tasks.
            while len(self.in_flight) < self.workers:
                task = self.pop_min_active()
                if task is None:
                    break
                self.in_flight.append(TaskExecution(self, task))
                self.stats.tasks_executed += 1

            if not self.in_flight:
                if self.active_count == 0 and not self.feed_host_batch():
                    break
                continue

            progressed = False
            for execution in self.in_flight:
                if not execution.waiting and not execution.done:
                    execution.step()
                    progressed = True
            self.stats.steps += 1
            steps += 1

            self.trigger_otherwise_for_minimum(self.min_live_index())
            # Wake rendezvous whose rules have now returned.
            for execution in self.in_flight:
                if execution.waiting and execution.pending_rules and \
                        execution.pending_rules[0].returned:
                    execution.status = _Status.RUNNING
                    progressed = True

            self.in_flight = [e for e in self.in_flight if not e.done]

            if not progressed and self.in_flight:
                # Everyone is waiting and no rule can return: deadlock
                # (cannot happen with well-formed otherwise clauses).
                raise SchedulingError(
                    "software runtime deadlock: all workers waiting — "
                    "check the rules' otherwise clauses"
                )
            if steps >= max_steps:
                raise SimulationError(
                    f"aggressive run exceeded {max_steps} steps"
                )
        self.spec.verify(self.state)
        return self.stats


class SpeculativeRuntime(AggressiveRuntime):
    """Aggressive runtime for speculative specifications (naming aid)."""


class CoordinativeRuntime(AggressiveRuntime):
    """Aggressive runtime for coordinative specifications (naming aid)."""
