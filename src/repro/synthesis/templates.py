"""Parameterized hardware templates (the MoA of Section 5.2).

Four template families, mirroring the paper: primitive-operation pipeline
modules, multi-bank task queues with a wavefront allocator, rule engines
(lane allocator + event bus + return buffer), and the generic memory
subsystem.  Each template estimates its Stratix V footprint; the constants
are calibrated so the relative shares reported in Section 6.2 hold (rule
engines take 4.8-10 % of registers, dominated by allocator and event bus;
their BRAM and combinational logic are negligible next to task pipelines).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.ir.bdfg import ActorKind


@dataclass(frozen=True)
class Footprint:
    """Resource usage of one template instance."""

    alms: int = 0
    registers: int = 0
    m20k: int = 0
    dsps: int = 0

    def __add__(self, other: "Footprint") -> "Footprint":
        return Footprint(
            self.alms + other.alms,
            self.registers + other.registers,
            self.m20k + other.m20k,
            self.dsps + other.dsps,
        )

    def scaled(self, factor: int) -> "Footprint":
        return Footprint(
            self.alms * factor,
            self.registers * factor,
            self.m20k * factor,
            self.dsps * factor,
        )


# ---------------------------------------------------------------------------
# Primitive-operation pipeline modules
# ---------------------------------------------------------------------------

# Per-kind base costs for a 64-bit datapath stage: (alms, registers, dsps).
# In-order stages interface as dual-port FIFOs (cheap); the two
# out-of-order kinds (load units, rendezvous) carry matching logic whose
# cost scales with their station depth.
_STAGE_BASE: dict[ActorKind, tuple[int, int, int]] = {
    ActorKind.SOURCE: (120, 260, 0),
    ActorKind.CONST: (20, 70, 0),
    ActorKind.ALU: (180, 240, 1),
    ActorKind.LOAD: (420, 700, 0),
    ActorKind.STORE: (320, 520, 0),
    ActorKind.SWITCH: (90, 190, 0),
    ActorKind.EXPAND: (360, 620, 0),
    ActorKind.ALLOC_RULE: (150, 300, 0),
    ActorKind.RENDEZVOUS: (260, 480, 0),
    ActorKind.ENQUEUE: (140, 280, 0),
    ActorKind.CALL: (900, 1500, 0),
    ActorKind.LABEL: (30, 90, 0),
    ActorKind.SINK: (10, 20, 0),
}

# Problem-specific function units (CALL) by hardware profile:
# a pointer walker, a floating-point geometric-predicate pipeline, or a
# dense multiply-accumulate array (16 lanes).
_CALL_PROFILES: dict[str, tuple[int, int, int]] = {
    "light": (900, 1500, 0),
    "geometry": (3200, 5200, 16),
    "macc": (6000, 9000, 32),
}

# Matching (CAM) logic per out-of-order station entry.
_OOO_ENTRY = (60, 130)


@dataclass(frozen=True)
class StageTemplate:
    """One primitive-operation module in a pipeline."""

    kind: ActorKind
    data_bits: int = 64
    station_depth: int = 8   # only meaningful for out-of-order kinds
    call_profile: str = "light"

    def footprint(self) -> Footprint:
        if self.kind is ActorKind.CALL:
            alms, regs, dsps = _CALL_PROFILES[self.call_profile]
        else:
            alms, regs, dsps = _STAGE_BASE[self.kind]
        scale = self.data_bits / 64.0
        alms = int(alms * scale)
        regs = int(regs * scale)
        if self.kind in (ActorKind.LOAD, ActorKind.RENDEZVOUS):
            alms += _OOO_ENTRY[0] * self.station_depth
            regs += _OOO_ENTRY[1] * self.station_depth
        return Footprint(alms=alms, registers=regs, dsps=dsps)


# ---------------------------------------------------------------------------
# Multi-bank task queues
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TaskQueueTemplate:
    """Multi-bank FIFO workset with a wavefront allocator [8].

    One queue per active task set; banks hold entries of ``entry_bits``
    (task fields plus the well-order index tag).  The wavefront allocator
    matches ``in_ports`` producers and ``out_ports`` consumers to banks each
    cycle for load balance.
    """

    banks: int = 4
    depth_per_bank: int = 512
    entry_bits: int = 96
    in_ports: int = 2
    out_ports: int = 2

    @property
    def capacity(self) -> int:
        return self.banks * self.depth_per_bank

    def footprint(self) -> Footprint:
        bits_per_bank = self.depth_per_bank * self.entry_bits
        m20k = self.banks * max(1, math.ceil(bits_per_bank / 20_480))
        # Wavefront allocator: a ports x banks grid of arbitration cells.
        grid = (self.in_ports + self.out_ports) * self.banks
        alms = 40 * self.banks + 55 * grid
        regs = 90 * self.banks + 70 * grid + 2 * self.entry_bits
        return Footprint(alms=alms, registers=regs, m20k=m20k)


# ---------------------------------------------------------------------------
# Rule engines
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RuleEngineTemplate:
    """One engine per rule type (Figure 8): allocator, lanes, event bus,
    return buffer.

    Most of the register cost sits in the lane allocator and the event bus
    (Section 6.2) — each lane latches its parameters and every event
    subscription adds a broadcast comparator per lane.
    """

    lanes: int = 16
    param_bits: int = 96
    subscriptions: int = 1     # distinct event patterns listened to
    clauses: int = 1
    pipelines_attached: int = 1

    def footprint(self) -> Footprint:
        # Lane state: parameter latches + requires-flags + verdict.
        lane_regs = self.lanes * (self.param_bits + 12 * self.clauses + 8)
        # Allocator: a grant arbiter over lanes plus one request port per
        # attached pipeline (linear, not a full crossbar).
        alloc_regs = 28 * self.lanes + 48 * max(1, self.pipelines_attached)
        alloc_alms = 16 * self.lanes + 10 * max(1, self.pipelines_attached)
        # Event bus: per-lane comparators per subscription, plus the
        # broadcast spine across pipelines.
        bus_regs = (
            34 * self.lanes * self.subscriptions
            + 120 * self.pipelines_attached
        )
        bus_alms = 22 * self.lanes * self.subscriptions
        # Return buffer: small reorder memory for out-of-order verdicts.
        ret_regs = 18 * self.lanes
        return Footprint(
            alms=alloc_alms + bus_alms + 30 * self.lanes,
            registers=lane_regs + alloc_regs + bus_regs + ret_regs,
            m20k=max(1, self.lanes // 32),
        )


# ---------------------------------------------------------------------------
# Memory subsystem
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MemorySubsystemTemplate:
    """The problem-independent HARP cache + QPI interface (Section 5.2)."""

    cache_bytes: int = 64 * 1024
    line_bytes: int = 64
    mshr_entries: int = 32

    def footprint(self) -> Footprint:
        lines = self.cache_bytes // self.line_bytes
        tag_regs = lines * 24
        return Footprint(
            alms=6_000 + 45 * self.mshr_entries,
            registers=9_000 + tag_regs // 8 + 120 * self.mshr_entries,
            m20k=max(1, self.cache_bytes // 2_560),
        )


@dataclass
class TemplateLibrary:
    """Default parameter choices, overridable per application."""

    stage_station_depth: int = 8
    queue: TaskQueueTemplate = field(default_factory=TaskQueueTemplate)
    memory: MemorySubsystemTemplate = field(
        default_factory=MemorySubsystemTemplate
    )

    def stage(
        self, kind: ActorKind, data_bits: int = 64,
        call_profile: str = "light",
    ) -> StageTemplate:
        return StageTemplate(
            kind, data_bits, self.stage_station_depth, call_profile
        )
