"""MoA: parameterized hardware templates and datapath synthesis (Section 5.2)."""

from repro.synthesis.datapath import Datapath, StageProgram, build_datapath
from repro.synthesis.resources import ResourceEstimate, estimate_datapath
from repro.synthesis.tuning import tune_parameters

__all__ = [
    "Datapath",
    "StageProgram",
    "build_datapath",
    "ResourceEstimate",
    "estimate_datapath",
    "tune_parameters",
]
