"""Datapath construction: BDFG + templates -> Model of Structure.

The datapath is the generalized architecture of Figure 7: per task set a
multi-bank task queue and ``replicas`` identical pipelines (the heuristic
tuner scales replicas until the FPGA is full); one rule engine per rule
type, shared by all pipelines; one generic memory subsystem.

A pipeline is represented as a :class:`StageProgram` — the BDFG chain
linearized, with switch/rendezvous false-branches attached as epilogue
programs.  The cycle-level simulator instantiates stage objects directly
from this structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.spec import ApplicationSpec
from repro.errors import SynthesisError
from repro.ir.bdfg import Actor, ActorKind, Bdfg
from repro.ir.lowering import lower_spec
from repro.ir.passes import check_graph
from repro.synthesis.templates import (
    MemorySubsystemTemplate,
    RuleEngineTemplate,
    TaskQueueTemplate,
    TemplateLibrary,
)


@dataclass
class StageSpec:
    """One pipeline stage: the actor it implements plus its false-branch."""

    actor: Actor
    epilogue: list["StageSpec"] = field(default_factory=list)

    @property
    def kind(self) -> ActorKind:
        return self.actor.kind

    @property
    def op(self):
        return self.actor.params.get("op")


@dataclass
class StageProgram:
    """The linearized pipeline for one task set."""

    task_set: str
    stages: list[StageSpec]

    def count_stages(self) -> int:
        total = 0

        def visit(stages: list[StageSpec]) -> None:
            nonlocal total
            for stage in stages:
                total += 1
                visit(stage.epilogue)

        visit(self.stages)
        return total


@dataclass
class Datapath:
    """The synthesized accelerator structure (Figure 7)."""

    name: str
    graph: Bdfg
    programs: dict[str, StageProgram]
    replicas: dict[str, int]
    queues: dict[str, TaskQueueTemplate]
    rule_engines: dict[str, RuleEngineTemplate]
    memory: MemorySubsystemTemplate
    library: TemplateLibrary

    @property
    def total_pipelines(self) -> int:
        return sum(self.replicas.values())


def linearize(graph: Bdfg, source: Actor) -> list[StageSpec]:
    """Walk a pipeline chain from ``source`` into a stage list."""
    stages: list[StageSpec] = []
    current: Actor | None = source
    while current is not None:
        if current.kind is ActorKind.SINK:
            break
        spec = StageSpec(current)
        if current.kind in (ActorKind.SWITCH, ActorKind.RENDEZVOUS):
            false_edges = [
                c for c in graph.outgoing(current) if c.src_port == "false"
            ]
            if len(false_edges) != 1:
                raise SynthesisError(
                    f"{current.name} must have exactly one false branch"
                )
            branch_head = false_edges[0].dst
            if branch_head.kind is not ActorKind.SINK:
                # linearize() includes the head itself (it is not a SOURCE).
                spec.epilogue = linearize(graph, branch_head)
        if current.kind is not ActorKind.SOURCE:
            stages.append(spec)
        out_edges = [
            c for c in graph.outgoing(current) if c.src_port == "out"
        ]
        if not out_edges:
            break
        if len(out_edges) != 1:
            raise SynthesisError(
                f"{current.name} fans out {len(out_edges)} ways"
            )
        current = out_edges[0].dst
    return stages


def build_datapath(
    spec: ApplicationSpec,
    replicas: dict[str, int] | None = None,
    rule_lanes: int = 16,
    queue_banks: int = 4,
    queue_depth: int = 1024,
    station_depth: int = 8,
    library: TemplateLibrary | None = None,
) -> Datapath:
    """Synthesize the datapath for an application specification.

    ``replicas`` maps task sets to pipeline instance counts (default 1
    each); the other knobs parameterize the templates.  The heuristic tuner
    (:func:`repro.synthesis.tuning.tune_parameters`) chooses them to fill
    the device.
    """
    graph = lower_spec(spec)
    check_graph(graph)
    library = library or TemplateLibrary(stage_station_depth=station_depth)
    replicas = dict(replicas or {})

    programs: dict[str, StageProgram] = {}
    for source in graph.sources():
        task_set = source.params["task_set"]
        chain = linearize(graph, source)
        programs[task_set] = StageProgram(task_set, chain)
        replicas.setdefault(task_set, 1)

    unknown = set(replicas) - set(programs)
    if unknown:
        raise SynthesisError(f"replicas for unknown task sets: {unknown}")

    queues: dict[str, TaskQueueTemplate] = {}
    for task_set, decl in spec.task_sets.items():
        ports = max(1, replicas[task_set])
        queues[task_set] = TaskQueueTemplate(
            banks=queue_banks,
            depth_per_bank=queue_depth,
            entry_bits=decl.entry_bits + 32,  # + well-order index tag
            in_ports=ports + 1,               # pipelines + host
            out_ports=ports,
        )

    total_pipelines = sum(replicas.values())
    rule_engines: dict[str, RuleEngineTemplate] = {}
    for rule_name, rule_type in spec.rules.items():
        rule_engines[rule_name] = RuleEngineTemplate(
            lanes=rule_lanes,
            param_bits=32 * max(1, len(rule_type.params)),
            subscriptions=max(1, len(rule_type.event_subscriptions())),
            clauses=max(1, len(rule_type.clauses)),
            pipelines_attached=total_pipelines,
        )

    return Datapath(
        name=spec.name,
        graph=graph,
        programs=programs,
        replicas=replicas,
        queues=queues,
        rule_engines=rule_engines,
        memory=library.memory,
        library=library,
    )
