"""Resource accounting for synthesized datapaths (Section 6.2).

Produces the per-component breakdown the paper discusses: task pipelines,
task queues, rule engines, and the memory subsystem, against the Stratix V
5SGXEA7N1F45 capacity.  The headline check is the rule-engine share of
total registers, which the paper reports as 4.8-10 % depending on the
application, with BRAM and combinational logic negligible next to the
pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ResourceError
from repro.eval.platforms import STRATIX_V, StratixV
from repro.synthesis.datapath import Datapath, StageSpec
from repro.synthesis.templates import Footprint


@dataclass
class ResourceEstimate:
    """Breakdown of one datapath's device usage."""

    pipelines: Footprint = field(default_factory=Footprint)
    queues: Footprint = field(default_factory=Footprint)
    rule_engines: Footprint = field(default_factory=Footprint)
    memory: Footprint = field(default_factory=Footprint)

    @property
    def total(self) -> Footprint:
        return self.pipelines + self.queues + self.rule_engines + self.memory

    @property
    def rule_engine_register_share(self) -> float:
        """Fraction of all registers consumed by rule engines."""
        total = self.total.registers
        return self.rule_engines.registers / total if total else 0.0

    def utilization(self, device: StratixV = STRATIX_V) -> dict[str, float]:
        total = self.total
        return {
            "alms": total.alms / device.alms,
            "registers": total.registers / device.registers,
            "m20k": total.m20k / device.m20k_blocks,
            "dsps": total.dsps / device.dsp_blocks,
        }

    def fits(self, device: StratixV = STRATIX_V) -> bool:
        return all(v <= 1.0 for v in self.utilization(device).values())


def _program_footprint(datapath: Datapath, stages: list[StageSpec]
                       ) -> Footprint:
    total = Footprint()
    for stage in stages:
        profile = getattr(stage.op, "profile", "light") if stage.op else \
            "light"
        template = datapath.library.stage(stage.kind, call_profile=profile)
        total = total + template.footprint()
        if stage.epilogue:
            total = total + _program_footprint(datapath, stage.epilogue)
    return total


def estimate_datapath(datapath: Datapath) -> ResourceEstimate:
    """Estimate the device footprint of a synthesized datapath."""
    estimate = ResourceEstimate()
    for task_set, program in datapath.programs.items():
        replicas = datapath.replicas[task_set]
        one = _program_footprint(datapath, program.stages)
        estimate.pipelines = estimate.pipelines + one.scaled(replicas)
    for queue in datapath.queues.values():
        estimate.queues = estimate.queues + queue.footprint()
    for engine in datapath.rule_engines.values():
        estimate.rule_engines = estimate.rule_engines + engine.footprint()
    estimate.memory = datapath.memory.footprint()
    return estimate


def require_fit(datapath: Datapath, device: StratixV = STRATIX_V
                ) -> ResourceEstimate:
    """Estimate and raise :class:`ResourceError` if the design overflows."""
    estimate = estimate_datapath(datapath)
    if not estimate.fits(device):
        overflowing = {
            k: round(v, 3)
            for k, v in estimate.utilization(device).items()
            if v > 1.0
        }
        raise ResourceError(
            f"datapath {datapath.name!r} exceeds the device: {overflowing}"
        )
    return estimate
