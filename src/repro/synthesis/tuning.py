"""Heuristic template-parameter selection (Section 6.3).

"Given an application, a number of parameters of architectural templates,
e.g. the number of pipelines and the number of lanes in the rule engine,
have to be customized.  Currently we rely on a heuristic approach to ensure
the resultant design occupies the FPGA resource as much as possible to
deliver the best performance."

The heuristic here: start with one pipeline per task set and grow the
replica counts round-robin (weighted toward the task set doing the memory
work) while the estimated design stays under the occupancy target; rule
lanes scale with the total pipeline count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.spec import ApplicationSpec
from repro.eval.platforms import STRATIX_V, StratixV
from repro.synthesis.datapath import Datapath, build_datapath
from repro.synthesis.resources import estimate_datapath


@dataclass(frozen=True)
class TunedParameters:
    """Chosen template parameters for one application."""

    replicas: dict[str, int]
    rule_lanes: int
    queue_banks: int
    station_depth: int

    @property
    def total_pipelines(self) -> int:
        return sum(self.replicas.values())


def tune_parameters(
    spec: ApplicationSpec,
    device: StratixV = STRATIX_V,
    occupancy_target: float = 0.8,
    max_pipelines_per_set: int = 24,
    lanes_per_pipeline: int = 4,
    max_lanes: int = 64,
) -> TunedParameters:
    """Grow the design until the device is ~full (the paper's heuristic)."""
    replicas = {name: 1 for name in spec.task_sets}
    order = list(spec.task_sets)
    chosen = dict(replicas)
    engines = max(1, len(spec.rules))

    def lane_count(candidate: dict[str, int]) -> int:
        total = lanes_per_pipeline * sum(candidate.values())
        return min(max_lanes, max(8, total // engines))

    def attempt(candidate: dict[str, int]) -> bool:
        lanes = lane_count(candidate)
        datapath = build_datapath(
            spec, replicas=candidate, rule_lanes=lanes,
        )
        estimate = estimate_datapath(datapath)
        usage = estimate.utilization(device)
        return max(usage.values()) <= occupancy_target

    if not attempt(replicas):
        # Even the minimal design misses the target: keep it anyway (it
        # still fits the device outright or require_fit will flag it).
        return TunedParameters(replicas, lane_count(replicas),
                               queue_banks=4, station_depth=8)

    growing = True
    while growing:
        growing = False
        for name in order:
            candidate = dict(chosen)
            if candidate[name] >= max_pipelines_per_set:
                continue
            candidate[name] += 1
            if attempt(candidate):
                chosen = candidate
                growing = True

    return TunedParameters(chosen, lane_count(chosen), queue_banks=4,
                           station_depth=8)


def build_tuned_datapath(
    spec: ApplicationSpec, device: StratixV = STRATIX_V, **tune_kwargs
) -> Datapath:
    """Tune parameters and build the resulting datapath."""
    params = tune_parameters(spec, device, **tune_kwargs)
    return build_datapath(
        spec,
        replicas=params.replicas,
        rule_lanes=params.rule_lanes,
        queue_banks=params.queue_banks,
        station_depth=params.station_depth,
    )
