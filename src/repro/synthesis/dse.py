"""Automatic design-space exploration for template parameters.

Section 8 leaves this as future work: "Another question for future work is
how to automatically choose parameters for templated components when
generating structures on FPGA.  With proper abstractions and automatic
design space explorations, developing hardware accelerator for irregular
applications will be open to software developers."

This module closes that loop within the reproduction: it sweeps the
architectural knobs (pipeline replicas, rule lanes, station depth) over a
candidate grid, prunes configurations that do not fit the device, runs the
cycle-level simulator for the survivors, and returns the Pareto frontier of
(cycles, registers).  Because the simulator computes real answers, every
explored point is also functionally verified.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.spec import ApplicationSpec
from repro.eval.platforms import STRATIX_V, HarpPlatform, HARP, StratixV
from repro.exec import CallableSource, SimJob, SweepRunner
from repro.sim.accelerator import SimConfig
from repro.synthesis.datapath import build_datapath
from repro.synthesis.resources import estimate_datapath


@dataclass(frozen=True)
class DesignPoint:
    """One explored configuration and its measurements."""

    replicas_per_set: int
    rule_lanes: int
    station_depth: int
    cycles: int
    registers: int
    alms: int
    utilization: float

    @property
    def label(self) -> str:
        return (f"P{self.replicas_per_set}/L{self.rule_lanes}"
                f"/S{self.station_depth}")

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance on (cycles, registers): smaller is better."""
        no_worse = (self.cycles <= other.cycles
                    and self.registers <= other.registers)
        better = (self.cycles < other.cycles
                  or self.registers < other.registers)
        return no_worse and better


@dataclass
class DseResult:
    """All evaluated points plus the Pareto frontier."""

    points: list[DesignPoint] = field(default_factory=list)
    skipped_overflow: int = 0

    @property
    def frontier(self) -> list[DesignPoint]:
        frontier = [
            p for p in self.points
            if not any(q.dominates(p) for q in self.points)
        ]
        return sorted(frontier, key=lambda p: p.cycles)

    def best_performance(self) -> DesignPoint:
        return min(self.points, key=lambda p: p.cycles)

    def smallest(self) -> DesignPoint:
        return min(self.points, key=lambda p: p.registers)


def explore(
    spec_builder: Callable[[], ApplicationSpec],
    replica_options: Sequence[int] = (1, 2, 4),
    lane_options: Sequence[int] = (16, 64),
    station_options: Sequence[int] = (8, 16),
    platform: HarpPlatform = HARP,
    device: StratixV = STRATIX_V,
    runner: SweepRunner | None = None,
    spec_source=None,
) -> DseResult:
    """Sweep the knob grid; simulate what fits; return Pareto data.

    ``spec_builder`` must return a fresh spec per call (simulation mutates
    program state).  Resource estimation stays in-process (it is cheap and
    structural); the surviving grid points — each a full cycle-level
    simulation — are batched through ``runner``.  Pass ``spec_source`` (a
    declarative source from :mod:`repro.exec`) to make the points
    cacheable and executable in pool workers; without it the builder is
    wrapped in an uncacheable :class:`CallableSource`.
    """
    result = DseResult()
    runner = runner or SweepRunner()
    source = spec_source or CallableSource(spec_builder)
    grid = itertools.product(replica_options, lane_options, station_options)
    jobs: list[SimJob] = []
    estimates: list = []
    for replicas_per_set, lanes, station in grid:
        probe_spec = spec_builder()
        replicas = {name: replicas_per_set for name in probe_spec.task_sets}
        datapath = build_datapath(
            probe_spec, replicas=replicas, rule_lanes=lanes,
            station_depth=station,
        )
        estimate = estimate_datapath(datapath)
        if not estimate.fits(device):
            result.skipped_overflow += 1
            continue
        jobs.append(SimJob(
            source=source,
            platform=platform,
            config=SimConfig(rule_lanes=lanes, station_depth=station),
            replicas=replicas,
            tag=f"dse:P{replicas_per_set}/L{lanes}/S{station}",
        ))
        estimates.append((replicas_per_set, lanes, station, estimate))
    outcomes = runner.run(jobs)
    for (replicas_per_set, lanes, station, estimate), outcome in zip(
        estimates, outcomes
    ):
        result.points.append(DesignPoint(
            replicas_per_set=replicas_per_set,
            rule_lanes=lanes,
            station_depth=station,
            cycles=outcome.cycles,
            registers=estimate.total.registers,
            alms=estimate.total.alms,
            utilization=outcome.utilization,
        ))
    return result


def format_frontier(result: DseResult) -> str:
    """Human-readable frontier table."""
    lines = [
        "Design-space exploration: Pareto frontier (cycles vs registers)",
        f"  explored {len(result.points)} fitting points, "
        f"{result.skipped_overflow} rejected for overflow",
        f"  {'config':>14s} {'cycles':>9s} {'registers':>10s} "
        f"{'util':>6s}{'':>3s}",
    ]
    frontier = set(id(p) for p in result.frontier)
    for point in sorted(result.points, key=lambda p: p.cycles):
        marker = " *" if id(point) in frontier else ""
        lines.append(
            f"  {point.label:>14s} {point.cycles:9d} "
            f"{point.registers:10d} {point.utilization:6.3f}{marker}"
        )
    lines.append("  (* = Pareto-optimal)")
    return "\n".join(lines)
