"""Event-driven fast-forward scheduling for the cycle simulator.

The dense core advances every stage, queue bank, rule lane, and memory
channel on every cycle, even when the whole accelerator is quiescent
waiting on a 200 ns QPI miss — exactly the irregular-latency pattern the
paper's memory subsystem (Figure 7, Choi et al. timing constants)
produces.  The fast-forward core skips those idle cycles: every
component reports a ``next_event_cycle(now)`` — the earliest future
cycle at which it could possibly act — and, when a whole cycle passes in
which *nothing* made progress, the scheduler jumps the clock directly to
the earliest reported wake-up instead of ticking through the idle gap.

Cycle-exactness argument (see docs/simulator.md for the full version):

* A cycle with no progress (no stage fired, no silent station/queue/host
  mutation, no event delivered, no otherwise triggered) leaves the
  machine state *stationary*: every stage's decision next cycle depends
  only on that unchanged state plus the clock.
* The only clock-driven state changes are enumerated as wake-up sources:
  memory-request completions, function-unit timers, event-heap delivery
  times, the minimum-broadcast interval (only when a broadcast would
  actually trigger an otherwise), fault-plan window boundaries,
  checkpoint captures, and invariant-checker passes.
* Therefore every skipped cycle would have been an exact repeat of the
  probe cycle just executed — so its *accounting* effects (per-stage
  stall cycles, queue-full counters, rule-engine allocation stalls, the
  stall-attribution profiler's cells) are replayed in bulk, multiplied
  by the number of skipped cycles, and per-stage accounting still sums
  exactly to the total cycle count.

The scheduler object lives inside the simulator's checkpointed object
graph, so rollback restores its bookkeeping along with the rest of the
machine and replayed cycles are never double-counted.
"""

from __future__ import annotations

# Sentinel for "no wake-up scheduled" — far beyond any max_cycles.
NEVER = 1 << 62


class FastForwardScheduler:
    """Wake-up aggregation plus skip crediting for one simulator.

    Attached by :class:`~repro.sim.accelerator.AcceleratorSim` when
    ``SimConfig.fast_forward`` is set.  ``cycle_stalls`` collects the
    ``(stage, reason)`` stall records of the cycle being executed; when
    that cycle turns out to be quiescent, those records describe exactly
    what every skipped cycle would have recorded.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self.jumps = 0
        self.cycles_skipped = 0
        # Stall records of the current (probe) cycle: (stage, reason).
        self.cycle_stalls: list = []
        # Declined-jump hold-off: no re-probe before this cycle.  While
        # the machine stays quiescent the wake-up set is stationary, so a
        # declined probe's answer holds for the whole declined gap; and
        # if progress *does* happen, stepping densely until the hold-off
        # expires is always legal — it only defers the next long jump by
        # (at most) ff_min_jump cycles.
        self.probe_after = 0
        # Optional jump journal for tests: (from_cycle, to_cycle, wake).
        self.log: list[tuple[int, int, int]] | None = None

    # -- wake-up aggregation ---------------------------------------------------

    def next_wakeup(self, now: int) -> int:
        """Earliest cycle > ``now`` at which any component could act."""
        sim = self.sim
        wake = NEVER
        heap = sim._event_heap
        if heap:
            when = heap[0][0]
            if when < wake:
                wake = when
        when = sim.memory.next_event_cycle(now)
        if when < wake:
            wake = when
        for stage in sim._timed_stages:
            when = stage.next_event_cycle(now)
            if when < wake:
                wake = when
        when = sim.host.next_event_cycle(now)
        if when < wake:
            wake = when
        when = self._next_broadcast_cycle(now)
        if when < wake:
            wake = when
        if sim.faults is not None:
            when = sim.faults.next_event_cycle(now)
            if when < wake:
                wake = when
        if sim.checkpoints is not None:
            when = sim.checkpoints.next_event_cycle(now)
            if when < wake:
                wake = when
        if sim.checker is not None:
            when = sim.checker.next_check_cycle(now)
            if when < wake:
                wake = when
        return wake

    def _next_broadcast_cycle(self, now: int) -> int:
        """Next minimum-broadcast boundary, if broadcasting would matter.

        A broadcast only changes state when some awaited, undecided rule
        lane's parent ties the (stationary) minimum; when no lane would
        trigger, every boundary inside the skipped span is a no-op and
        needs no wake-up.
        """
        sim = self.sim
        if sim.spec.otherwise_scope == "global":
            minimum = sim.tracker.minimum()
            fire = any(
                engine.would_fire_otherwise(minimum)
                for engine in sim._engine_list
            )
        else:
            fire = any(
                engine.would_fire_otherwise(engine.min_allocated_index())
                for engine in sim._engine_list
            )
        if not fire:
            return NEVER
        interval = sim.config.minimum_broadcast_interval
        return ((now // interval) + 1) * interval

    # -- the jump --------------------------------------------------------------

    def jump_target(self) -> int:
        """Where to move the clock after a quiescent cycle.

        Clamped so the run loop's limit checks (max_cycles, the deadlock
        window) fire at exactly the same cycle they would in dense mode.
        Jumps shorter than ``SimConfig.ff_min_jump`` are declined
        (hysteresis): on short stalls the wake-up probe costs more than
        densely stepping the gap, and dense stepping is always legal.
        """
        sim = self.sim
        wake = self.next_wakeup(sim.cycle - 1)
        cap = min(
            sim.config.max_cycles,
            sim._last_progress_cycle + sim.config.deadlock_window + 1,
        )
        target = min(max(wake, sim.cycle), cap)
        if target - sim.cycle < sim.config.ff_min_jump:
            self.probe_after = target
            return sim.cycle
        if self.log is not None:
            self.log.append((sim.cycle, target, wake))
        return target

    def skip_to(self, target: int) -> None:
        """Jump the clock to ``target``, crediting the skipped cycles.

        Every skipped cycle is an exact repeat of the probe cycle, so
        its stall records are replayed ``skipped`` times: per-stage stall
        counters, the stage-specific side counters (queue-full, rule
        allocation stalls), and — when observability is attached — the
        stall-attribution profiler, which keeps per-stage rows summing
        exactly to the total cycle count.
        """
        sim = self.sim
        skipped = target - sim.cycle
        if skipped <= 0:
            return
        obs = sim.obs
        credited: set[str] = set()
        for stage, reason in self.cycle_stalls:
            stage.credit_skipped_stalls(reason, skipped)
            if obs is not None and stage.name not in credited:
                # The profiler charges one cell per stage per cycle with
                # the first recorded reason winning — mirror that here.
                credited.add(stage.name)
                obs.credit_skipped_stalls(stage.name, reason, skipped)
        # Dense mode refreshes the progress watermark on every cycle
        # with an outstanding memory completion still in the future.
        latest = sim.memory.latest_completion()
        watermark = min(target - 1, latest - 1)
        if watermark > sim._last_progress_cycle:
            sim._last_progress_cycle = watermark
        self.jumps += 1
        self.cycles_skipped += skipped
        sim.cycle = target
        sim.stats.cycles = target
