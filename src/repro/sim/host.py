"""Host-side task injection.

For DMR and COOR-LU the host processor streams the initial task list into
the accelerator's queues incrementally (Section 6.1).  Each batch crosses
the QPI channel as a DMA transfer before it can be enqueued, so the feed
rate — and with it these applications' end-to-end speedup — scales with the
channel bandwidth, which is exactly the linear correlation Figure 10 shows
for SPEC-DMR and COOR-LU.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.indexing import TaskIndex
from repro.core.spec import ApplicationSpec, SeedTask
from repro.sim.fastpath import NEVER


class HostAdapter:
    """Feeds seed tasks and host batches into the simulated accelerator."""

    def __init__(self, ctx, spec: ApplicationSpec) -> None:
        self.ctx = ctx
        self.spec = spec
        self._batches: Iterator[list[SeedTask]] | None = None
        self._pending: list[SeedTask] | None = None
        self._transfer_req: int | None = None
        self._exhausted = spec.host_feed is None
        self.batches_sent = 0
        # Checkpoint replay: the generator cannot be deep-copied, so when
        # checkpointing is enabled every batch pulled from it is logged
        # (``_batch_log`` is shared across clones by identity) and a
        # restored run replays the log past its own ``_batch_cursor``
        # before pulling the live generator again.
        self._batch_log: list[list[SeedTask] | None] | None = None
        self._batch_cursor = 0
        if spec.host_feed is not None:
            self._batches = spec.host_feed.batches(ctx.state)

    def enable_replay(self) -> None:
        """Start logging pulled batches (required before checkpointing)."""
        if self._batch_log is None:
            self._batch_log = []

    def _next_batch(self) -> list[SeedTask] | None:
        if self._batch_log is None:
            if self._batches is None:
                return None
            return next(self._batches, None)
        if self._batch_cursor < len(self._batch_log):
            batch = self._batch_log[self._batch_cursor]
        else:
            batch = (
                next(self._batches, None)
                if self._batches is not None else None
            )
            self._batch_log.append(batch)
        self._batch_cursor += 1
        return batch

    def start(self) -> None:
        """Seed the initial tasks (free: they are enqueued before t=0)."""
        for task_set, fields in self.spec.initial_tasks(self.ctx.state):
            self.ctx.activate(task_set, dict(fields), parent=None)
        self._advance_batch()

    def _advance_batch(self) -> None:
        if self.spec.host_feed is None:
            self._update_horizon()
            return
        self._pending = self._next_batch()
        if self._pending is None:
            self._exhausted = True
            self._update_horizon()
            return
        nbytes = len(self._pending) * self.spec.host_feed.bytes_per_task
        self._transfer_req = self.ctx.memory.issue_stream(
            self.ctx.cycle, nbytes
        )
        if self.ctx.ledger is not None:
            self.ctx.ledger.host_issue(
                self.ctx.cycle,
                self.ctx.memory.done_at(self._transfer_req),
                nbytes,
            )
        self._update_horizon()

    def _update_horizon(self) -> None:
        """Hold the live minimum down at the next un-injected task's index.

        Only computable for priority-indexed single-loop task sets (COOR-LU's
        seq field); counter-indexed feeds always mint indices larger than
        anything already live, so no horizon is needed there.
        """
        tracker = self.ctx.tracker
        if not self._pending:
            tracker.horizon = None
            return
        task_set, fields = self._pending[0]
        priority_field = self.spec.priority_fields.get(task_set)
        if priority_field is not None and self.ctx.minter.width == 1:
            tracker.horizon = TaskIndex((int(fields[priority_field]),))
        else:
            tracker.horizon = None

    def tick(self) -> None:
        if self._pending is None:
            return
        ctx = self.ctx
        if self._transfer_req is not None:
            if not ctx.memory.ready(ctx.cycle, self._transfer_req):
                return
            ctx.quiet = False  # silent mutation: batch transfer landed
            if ctx.ledger is not None:
                ctx.ledger.mem_take(self._transfer_req)
            ctx.memory.retire(self._transfer_req)
            self._transfer_req = None
        # Inject when every target queue has room for its share.
        needed: dict[str, int] = {}
        for task_set, _fields in self._pending:
            needed[task_set] = needed.get(task_set, 0) + 1
        for task_set, count in needed.items():
            if not ctx.queues[task_set].can_push(count):
                return
        if ctx.ledger is not None:
            ctx.ledger.host_inject(self.batches_sent, ctx.cycle)
        for task_set, fields in self._pending:
            ctx.activate(
                task_set, dict(fields), parent=None,
                cause="host", cause_uid=self.batches_sent,
            )
        self.batches_sent += 1
        self._pending = None
        self._advance_batch()

    @property
    def exhausted(self) -> bool:
        return self._exhausted and self._pending is None

    def busy(self) -> bool:
        return self._pending is not None

    def next_event_cycle(self, now: int) -> int:
        """Completion of the in-flight batch DMA, if one is pending.

        (Redundant with the MemorySystem's scan — the transfer is a
        tracked request — but kept so every component declares its own
        wake-ups; a batch blocked on queue space has no timed wake.)
        """
        if self._transfer_req is not None:
            done = self.ctx.memory.done_at(self._transfer_req)
            if done > now:
                return done
        return NEVER
