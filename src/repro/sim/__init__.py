"""Cycle-level simulator of the synthesized accelerator (Figures 7 and 8).

This package plays the role the HARP board plays in the paper (plus the
authors' bandwidth-scalable software emulator behind Figure 10): it executes
a synthesized datapath cycle by cycle — multi-bank task queues feeding
replicated task pipelines, rule engines squashing and forwarding tokens, an
out-of-order load/store layer over a 64 KB cache, and a QPI channel with
parameterizable bandwidth.  The simulation is *functional*: it computes the
application's real answer, which is verified against the sequential oracle.
"""

from repro.obs import (
    EventTracer,
    MetricsRegistry,
    Observability,
    StallProfiler,
    StallReason,
    TraceEvent,
    TraceEventKind,
)
from repro.sim.accelerator import (
    AcceleratorSim,
    ResilientResult,
    SimResult,
    run_resilient,
    simulate_app,
)
from repro.sim.checkpoint import CheckpointManager
from repro.sim.faults import FaultEvent, FaultKind, FaultPlan
from repro.sim.invariants import InvariantChecker
from repro.sim.stats import SimStats
from repro.sim.trace import ScheduleTracer

__all__ = [
    "AcceleratorSim",
    "CheckpointManager",
    "EventTracer",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "InvariantChecker",
    "MetricsRegistry",
    "Observability",
    "ResilientResult",
    "ScheduleTracer",
    "SimResult",
    "SimStats",
    "StallProfiler",
    "StallReason",
    "TraceEvent",
    "TraceEventKind",
    "run_resilient",
    "simulate_app",
]
