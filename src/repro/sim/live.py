"""Global live-index tracking.

The otherwise clause fires for a waiting rule when its parent task is the
minimum of *all live tasks* — active in queues, flowing through pipelines,
or waiting at rendezvous.  The tracker maintains that minimum with a lazy
heap; tokens register on activation and deregister on retirement, with a
reference count so Expand-forked siblings share one registration.

``horizon`` covers host-fed applications: tasks the host has not yet
injected but whose well-order position is already known (COOR-LU streams a
priority-indexed task list) must hold the minimum down, otherwise a queued
later task could be released before its not-yet-arrived predecessors.
"""

from __future__ import annotations

import heapq
import itertools

from repro.core.indexing import TaskIndex
from repro.errors import SimulationError


class LiveIndexTracker:
    """Min-tracking multiset of task indices with refcounted handles."""

    def __init__(self) -> None:
        self._heap: list[tuple[tuple, int]] = []
        self._refs: dict[int, tuple[TaskIndex, int]] = {}
        self._handles = itertools.count()
        self.horizon: TaskIndex | None = None

    def register(self, index: TaskIndex) -> int:
        handle = next(self._handles)
        self._refs[handle] = (index, 1)
        heapq.heappush(self._heap, (index.positions, handle))
        return handle

    def retain(self, handle: int, count: int = 1) -> None:
        index, refs = self._refs[handle]
        self._refs[handle] = (index, refs + count)

    def release(self, handle: int) -> None:
        if handle not in self._refs:
            raise SimulationError(f"release of unknown live handle {handle}")
        index, refs = self._refs[handle]
        if refs <= 1:
            del self._refs[handle]
        else:
            self._refs[handle] = (index, refs - 1)

    @property
    def count(self) -> int:
        return len(self._refs)

    def snapshot(self) -> dict[int, tuple[TaskIndex, int]]:
        """Handle -> (index, refcount) copy, for the invariant checker."""
        return dict(self._refs)

    def holds(self, handle: int) -> bool:
        return handle in self._refs

    def minimum(self) -> TaskIndex | None:
        """Current minimum live index (including the host horizon)."""
        live_min: TaskIndex | None = None
        while self._heap:
            positions, handle = self._heap[0]
            if handle in self._refs:
                live_min = self._refs[handle][0]
                break
            heapq.heappop(self._heap)
        if self.horizon is not None:
            if live_min is None or self.horizon.earlier_than(live_min):
                return self.horizon
        return live_min
