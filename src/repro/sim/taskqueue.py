"""Multi-bank task queues with a wavefront allocator (Section 5.2).

Each active task set gets one queue.  Entries are (index, fields) pairs;
tasks pop in FIFO order per bank, with a rotating wavefront matching banks
to push/pop ports each cycle for load balance — the hardware equivalent of
a software thread pool, "much more approachable on FPGAs".
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any

from repro.core.indexing import TaskIndex
from repro.errors import SimulationError
from repro.sim.fastpath import NEVER


class MultiBankTaskQueue:
    """Banked workset for one task set.

    ``pop_policy`` is "fifo" for unordered sets or "priority" for
    priority-indexed sets: the pop port then returns the minimum well-order
    index across the bank heads plus one comparator deep into each bank —
    the multi-bank double-ended queue the paper sketches for ordered
    worksets (the hardware analogue of Kulkarni et al.'s priority queues).
    """

    def __init__(
        self, task_set: str, banks: int = 4, depth_per_bank: int = 1024,
        pop_policy: str = "fifo", faults=None, obs=None, ledger=None,
    ) -> None:
        if banks < 1 or depth_per_bank < 1:
            raise SimulationError("queue needs positive banks and depth")
        if pop_policy not in ("fifo", "priority"):
            raise SimulationError(f"unknown pop policy {pop_policy!r}")
        self.task_set = task_set
        self.faults = faults
        self.obs = obs  # Observability hooks (None = zero cost)
        self.ledger = ledger  # TokenLedger grant counting (None = off)
        self.banks: list[deque] = [deque() for _ in range(banks)]
        self.depth_per_bank = depth_per_bank
        self.pop_policy = pop_policy
        self._heaps: list[list] = [[] for _ in range(banks)]
        self._serial = 0
        self._push_wave = 0
        self._pop_wave = 0
        self.pushes = 0
        self.pops = 0
        self.high_watermark = 0

    # -- capacity ---------------------------------------------------------

    @property
    def capacity(self) -> int:
        return len(self.banks) * self.depth_per_bank

    def __len__(self) -> int:
        return sum(len(b) for b in self.banks)

    def can_push(self, count: int = 1) -> bool:
        free = sum(self.depth_per_bank - len(b) for b in self.banks)
        return free >= count

    # -- wavefront ports -----------------------------------------------------

    def push(self, index: TaskIndex, fields: dict[str, Any],
             live_handle: int) -> None:
        """Push through the wavefront allocator (next bank with space)."""
        for offset in range(len(self.banks)):
            slot = (self._push_wave + offset) % len(self.banks)
            bank = self.banks[slot]
            if len(bank) < self.depth_per_bank:
                entry = (index, fields, live_handle)
                if self.pop_policy == "priority":
                    heapq.heappush(
                        self._heaps[slot],
                        (index.positions, self._serial, entry),
                    )
                    self._serial += 1
                    bank.append(None)  # occupancy marker
                else:
                    bank.append(entry)
                self._push_wave = (slot + 1) % len(self.banks)
                self.pushes += 1
                self.high_watermark = max(self.high_watermark, len(self))
                if self.obs is not None:
                    self.obs.queue_push(self.task_set, len(self))
                return
        raise SimulationError(f"push into full task queue {self.task_set!r}")

    def pop(self) -> tuple[TaskIndex, dict[str, Any], int] | None:
        """Pop the next task.

        FIFO policy rotates the wavefront over non-empty banks; priority
        policy pops the minimum index across the per-bank heap heads.
        """
        faults = self.faults
        if self.pop_policy == "priority":
            best_slot = -1
            best_key = None
            for slot, heap in enumerate(self._heaps):
                if faults is not None and \
                        faults.bank_stalled(self.task_set, slot):
                    continue
                if heap and (best_key is None or heap[0][0] < best_key):
                    best_key = heap[0][0]
                    best_slot = slot
            if best_slot < 0:
                return None
            _, _, entry = heapq.heappop(self._heaps[best_slot])
            self.banks[best_slot].pop()
            self.pops += 1
            if self.obs is not None:
                self.obs.queue_pop(self.task_set, len(self))
            if self.ledger is not None:
                self.ledger.queue_grant(self.task_set)
            return entry
        for offset in range(len(self.banks)):
            slot = (self._pop_wave + offset) % len(self.banks)
            if faults is not None and \
                    faults.bank_stalled(self.task_set, slot):
                continue
            bank = self.banks[slot]
            if bank:
                self._pop_wave = (slot + 1) % len(self.banks)
                self.pops += 1
                entry = bank.popleft()
                if self.obs is not None:
                    self.obs.queue_pop(self.task_set, len(self))
                if self.ledger is not None:
                    self.ledger.queue_grant(self.task_set)
                return entry
        return None

    def peek_min_index(self) -> TaskIndex | None:
        """Smallest index currently queued (None when empty or FIFO)."""
        if self.pop_policy != "priority":
            return None
        heads = [heap[0] for heap in self._heaps if heap]
        if not heads:
            return None
        return min(heads)[2][0]

    def entries(self):
        """Yield every queued ``(index, fields, live_handle)`` entry.

        Non-destructive; used by the invariant checker's conservation walk.
        """
        if self.pop_policy == "priority":
            for heap in self._heaps:
                for _key, _serial, entry in heap:
                    yield entry
        else:
            for bank in self.banks:
                yield from bank

    def bank_occupancy(self) -> list[int]:
        return [len(b) for b in self.banks]

    def next_event_cycle(self, now: int) -> int:
        """Queues hold no timers: pops and pushes are driven by stages,
        and fault-windowed bank stalls wake via the FaultPlan's boundary."""
        return NEVER
