"""Per-token provenance ledger: the causal record behind critical paths.

A :class:`TokenLedger` is an opt-in recorder threaded through the sim
core the same way the fault and observability hooks are: every component
holds ``ledger = None`` by default and pays one identity test, so with
the ledger disabled the simulator's behaviour — cycles included — is
bit-identical (a tested invariant, see ``bench_smoke``'s ledger section).

Per :class:`~repro.sim.token.SimToken` uid the ledger keeps a
time-ordered list of lifecycle events — birth from a queue grant, forks,
stage firings, station issue/ready/release pairs, retirement — each
stamped with the *causal edge* that released it: the parent fork, the
rule rendezvous answer (which token's event decided the promise), the
memory request completion, the queue grant, or the host batch launch.

Every cycle recorded is engine-independent by construction: events are
appended only when a token actually moves (the ``dense``/``fast``/
``event`` engines execute exactly the same non-quiescent cycles), and
resource readiness is stamped with the *scheduled* completion cycle
(``MemorySystem.done_at``, the rule instance's decision cycle) rather
than the cycle the completion happened to be observed on.  Ledgers are
therefore byte-identical across all three engines.

Checkpoint/rollback safety comes for free from placement: the ledger is
an attribute of the simulator and deliberately *not* a shared checkpoint
root, so a snapshot deep-copies it and a rollback restores it — cycles
past the checkpoint are forgotten and re-recorded on replay, never
double-counted.  Tokens that retire with outcome ``squash``/``drop``
stay in the ledger as wasted-speculation chains.

The analysis layer that walks this record lives in
:mod:`repro.obs.critpath`.
"""

from __future__ import annotations

from typing import Any

# Event tuples, first element is the code:
#   ("born", cycle, act_cycle, cause_kind, cause_uid, source)
#       token minted at a source stage; act_cycle is when the task was
#       activated (queued); cause_kind is "seed" | "host" | "task" with
#       cause_uid the activating token's uid ("task"), the host batch
#       ordinal ("host"), or -1 ("seed"); source is the minting source
#       stage's name (critpath uses it to find the preceding grant).
#   ("fork", cycle, parent_uid)
#       Expand child creation; shares the parent's task identity.
#   ("fire", cycle, stage)
#       an in-order stage processed the token.
#   ("issue", cycle, stage)
#       the token entered an out-of-order station (load/expand/
#       rendezvous/call) and its resource request was issued.
#   ("ready", cycle, stage, cause_uid, kind)
#       the station's resource wait resolved.  kind is "mem_hit" |
#       "mem_miss" | "mem_stream" | "fu" | "clause" | "requires" |
#       "otherwise"; cause_uid names the token whose event decided a
#       rule promise (-1 otherwise).
#   ("release", cycle, stage, outcome)
#       the token left the station ("pass" | "squash" | "expand").
#   ("retire", cycle, outcome)
#       the token left the datapath ("commit" | "drop" | "squash" |
#       "end").
BORN = "born"
FORK = "fork"
FIRE = "fire"
ISSUE = "issue"
READY = "ready"
RELEASE = "release"
RETIRE = "retire"


class TokenLedger:
    """Opt-in per-token lifecycle and causal-edge recorder."""

    def __init__(self) -> None:
        # uid -> time-ordered event tuples (see module docstring).
        self.tokens: dict[int, list[tuple]] = {}
        # live_handle -> (act_cycle, cause_kind, cause_uid), pending
        # until the source stage mints the token (consumed by `born`).
        self.activations: dict[int, tuple[int, str, int]] = {}
        # memory request id -> (issue_cycle, done_at, kind); consumed
        # when the waiting station reports readiness.
        self._mem_reqs: dict[int, tuple[int, int, str]] = {}
        # Host batch DMA chain: [issue_cycle, done_at, injected_cycle,
        # nbytes] per batch, in launch order (injected_cycle is -1 while
        # the batch is in flight).
        self.host_batches: list[list[int]] = []
        # Queue grants per task set (the pop port handed work out).
        self.grants: dict[str, int] = {}
        # (cycle, uid) of the most recent retirement: deterministic
        # within-cycle order makes this *the* last-retiring token.
        self.final: tuple[int, int] | None = None
        # Refreshed by AcceleratorSim.step, like Observability.now;
        # hooks without a cycle of their own timestamp with it.
        self.now = 0

    # -- recording -----------------------------------------------------------

    def _append(self, uid: int, event: tuple) -> None:
        events = self.tokens.get(uid)
        if events is None:
            self.tokens[uid] = [event]
            return
        # Clamp to monotone per-token time so spans never go negative
        # (a rule may decide before its parent reaches the rendezvous).
        last = events[-1][1]
        if event[1] < last:
            event = (event[0], last) + event[2:]
        events.append(event)

    def activate(self, handle: int, cycle: int, cause: str,
                 cause_uid: int) -> None:
        self.activations[handle] = (cycle, cause, cause_uid)

    def queue_grant(self, task_set: str) -> None:
        self.grants[task_set] = self.grants.get(task_set, 0) + 1

    def born(self, uid: int, cycle: int, handle: int,
             source: str = "") -> None:
        act_cycle, cause, cause_uid = self.activations.pop(
            handle, (cycle, "seed", -1)
        )
        self._append(uid, (BORN, cycle, act_cycle, cause, cause_uid, source))

    def fork(self, uid: int, cycle: int, parent_uid: int) -> None:
        self._append(uid, (FORK, cycle, parent_uid))

    def fire(self, uid: int, cycle: int, stage: str) -> None:
        self._append(uid, (FIRE, cycle, stage))

    def issue(self, uid: int, cycle: int, stage: str) -> None:
        self._append(uid, (ISSUE, cycle, stage))

    def ready(self, uid: int, cycle: int, stage: str, cause_uid: int,
              kind: str) -> None:
        self._append(uid, (READY, cycle, stage, cause_uid, kind))

    def release(self, uid: int, cycle: int, stage: str,
                outcome: str) -> None:
        self._append(uid, (RELEASE, cycle, stage, outcome))

    def retire(self, uid: int, cycle: int, outcome: str) -> None:
        self._append(uid, (RETIRE, cycle, outcome))
        self.final = (cycle, uid)

    # -- memory causal edges ---------------------------------------------------

    def mem_issue(self, req_id: int, cycle: int, done_at: int,
                  kind: str) -> None:
        """A tracked transfer was issued (load hit/miss or bulk stream)."""
        self._mem_reqs[req_id] = (cycle, done_at, kind)

    def mem_ready(self, uid: int, stage: str, req_id: int) -> None:
        """The station holding ``uid`` saw its request complete."""
        issued, done, kind = self._mem_reqs.pop(
            req_id, (self.now, self.now, "mem_stream")
        )
        self.ready(uid, done, stage, -1, kind)

    def mem_take(self, req_id: int) -> int:
        """Consume a tracked request, returning its completion cycle."""
        record = self._mem_reqs.pop(req_id, None)
        return record[1] if record is not None else self.now

    # -- host launch chain ------------------------------------------------------

    def host_issue(self, cycle: int, done_at: int, nbytes: int) -> None:
        self.host_batches.append([cycle, done_at, -1, nbytes])

    def host_inject(self, ordinal: int, cycle: int) -> None:
        if 0 <= ordinal < len(self.host_batches):
            self.host_batches[ordinal][2] = cycle

    # -- summaries -------------------------------------------------------------

    def events_of(self, uid: int) -> list[tuple]:
        return self.tokens.get(uid, [])

    def token_span(self, uid: int) -> tuple[int, int]:
        """(first, last) recorded cycle for a token (activation included)."""
        events = self.tokens[uid]
        first = events[0][1]
        if events[0][0] == BORN:
            first = min(first, events[0][2])
        return first, events[-1][1]

    def wasted_speculation(self) -> dict[str, int]:
        """Cycles sunk into tokens that were squashed or dropped."""
        tokens = 0
        cycles = 0
        for uid, events in self.tokens.items():
            last = events[-1]
            if last[0] == RETIRE and last[2] in ("squash", "drop"):
                first, end = self.token_span(uid)
                tokens += 1
                cycles += end - first
        return {"tokens": tokens, "cycles": cycles}

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dump (testing/debugging aid, not a stable schema)."""
        return {
            "tokens": {str(uid): [list(e) for e in events]
                       for uid, events in sorted(self.tokens.items())},
            "host_batches": [list(b) for b in self.host_batches],
            "grants": dict(sorted(self.grants.items())),
            "final": list(self.final) if self.final else None,
        }
