"""Pipeline stage machinery: one simulated module per BDFG actor.

Stages process at most one token per cycle (the templates' initiation
interval), communicate through registered FIFOs, and stall on backpressure.
The two out-of-order kinds — load units and rendezvous — hold tokens in
small matching stations and release completions in any order, so blocked
tasks are bypassed (the dynamic dataflow reordering of Section 5.2).
Everything else is in-order with frugal dual-port FIFO interfaces.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.events import Event, EventKind
from repro.core.kernel import (
    AllocRule,
    Alu,
    Call,
    Const,
    Enqueue,
    Expand,
    Guard,
    Label,
    Load,
    Rendezvous,
    Store,
)
from repro.errors import SimulationError
from repro.obs.events import StallReason
from repro.sim.fastpath import NEVER
from repro.sim.fifo import Fifo
from repro.sim.token import SimToken


def _value(spec: Callable | int, env: dict[str, Any]) -> int:
    return spec(env) if callable(spec) else spec


class Stage:
    """Base simulated pipeline stage."""

    __slots__ = ("ctx", "op", "name", "input", "output", "on_retire",
                 "active_cycles", "stall_cycles")

    def __init__(self, ctx, op, name: str) -> None:
        self.ctx = ctx
        self.op = op
        self.name = name
        self.input: Fifo[SimToken] = Fifo(
            capacity=ctx.config.fifo_depth, name=f"{name}.in"
        )
        self.output: Fifo[SimToken] | None = None  # wired by the pipeline
        self.on_retire: str = "commit"             # outcome at chain end
        self.active_cycles = 0
        self.stall_cycles = 0

    # -- wiring ----------------------------------------------------------------

    def send(self, token: SimToken) -> None:
        if self.output is not None:
            self.output.push(token)
        else:
            self.ctx.retire(token, self.on_retire)

    def can_send(self) -> bool:
        return self.output is None or self.output.can_push()

    # -- per-cycle -----------------------------------------------------------

    def tick(self) -> None:
        """Default in-order single-cycle behaviour."""
        if self.input.visible == 0:
            return
        if not self.can_send():
            self._stall(StallReason.BACKPRESSURE)
            return
        token = self.input.pop()
        if self.ctx.ledger is not None:
            self.ctx.ledger.fire(token.uid, self.ctx.cycle, self.name)
        self.process(token)
        self.mark_active()

    def process(self, token: SimToken) -> None:  # pragma: no cover
        raise NotImplementedError

    def mark_active(self) -> None:
        self.active_cycles += 1
        ctx = self.ctx
        ctx.active_stages_this_cycle += 1
        ctx.quiet = False
        if ctx.tracer is not None:
            ctx.tracer.record(ctx.cycle, self.name)
        if ctx.obs is not None:
            ctx.obs.stage_fire(ctx.cycle, self.name)

    def _stall(self, reason: StallReason) -> None:
        """One stalled cycle, attributed to the blocking resource."""
        self.stall_cycles += 1
        ctx = self.ctx
        if ctx.ff is not None:
            # Fast-forward probe: if this whole cycle turns out to make
            # no progress, every skipped cycle repeats this stall.
            ctx.ff.cycle_stalls.append((self, reason))
        if ctx.obs is not None:
            ctx.obs.stage_stall(ctx.cycle, self.name, reason)

    # -- fast-forward interface -----------------------------------------------

    def next_event_cycle(self, now: int) -> int:
        """Earliest future cycle this stage could act at without any other
        state changing.  Memory-request completions are reported by the
        MemorySystem, so only stages with private timers override this."""
        return NEVER

    def credit_skipped_stalls(self, reason: StallReason, count: int) -> None:
        """Replay ``count`` skipped repeats of one probe-cycle stall."""
        self.stall_cycles += count

    def busy(self) -> bool:
        return len(self.input) > 0

    def drain_tokens(self) -> list[SimToken]:
        """Diagnostics: tokens stuck in this stage."""
        return self.input.drain()


class ConstStage(Stage):
    __slots__ = ()

    def process(self, token: SimToken) -> None:
        op: Const = self.op
        token.env[op.dst] = op.value
        self.send(token)


class AluStage(Stage):
    __slots__ = ()

    def process(self, token: SimToken) -> None:
        op: Alu = self.op
        token.env[op.dst] = op.fn(token.env)
        self.send(token)


class LabelStage(Stage):
    __slots__ = ()

    def process(self, token: SimToken) -> None:
        op: Label = self.op
        payload = (
            {name: token.env[name] for name in op.payload}
            if op.payload else dict(token.env)
        )
        self.ctx.emit_at(
            self.ctx.cycle + 1,
            Event(EventKind.REACH, token.task_set, op.label, token.index,
                  payload),
            token.task_uid,
        )
        self.send(token)


class LoadStage(Stage):
    """Out-of-order load unit: a station of in-flight cache requests."""

    __slots__ = ("station", "depth", "in_order")

    def __init__(self, ctx, op, name: str) -> None:
        super().__init__(ctx, op, name)
        self.station: list[tuple[SimToken, int]] = []
        self.depth = ctx.config.station_depth
        self.in_order = not ctx.config.out_of_order

    def tick(self) -> None:
        ctx = self.ctx
        # 1) release one completed request (head-only when in-order).
        if self.station and not self.can_send():
            self._stall(StallReason.BACKPRESSURE)
        elif self.station:
            candidates = self.station[:1] if self.in_order else self.station
            for entry in candidates:
                token, req = entry
                if ctx.memory.ready(ctx.cycle, req):
                    op: Load = self.op
                    token.env[op.dst] = ctx.state.load(
                        op.region, op.addr(token.env)
                    )
                    if ctx.ledger is not None:
                        ctx.ledger.mem_ready(token.uid, self.name, req)
                        ctx.ledger.release(
                            token.uid, ctx.cycle, self.name, "pass"
                        )
                    ctx.memory.retire(req)
                    self.station.remove(entry)
                    self.send(token)
                    self.mark_active()
                    break
        # 2) issue one new request.
        if self.input.visible and len(self.station) < self.depth:
            ctx.quiet = False  # silent mutation: station + cache state
            token = self.input.pop()
            op = self.op
            addr = self.ctx.state.address(op.region, op.addr(token.env))
            if ctx.ledger is not None:
                ctx.ledger.issue(token.uid, ctx.cycle, self.name)
            req = ctx.memory.issue_load(ctx.cycle, addr)
            self.station.append((token, req))
        elif self.input.visible:
            self._stall(StallReason.MEMORY)

    def busy(self) -> bool:
        return bool(self.station) or len(self.input) > 0


class StoreStage(Stage):
    """Commit unit: functional write-through plus event broadcast."""

    __slots__ = ()

    def process(self, token: SimToken) -> None:
        op: Store = self.op
        ctx = self.ctx
        env = token.env
        addr_idx = op.addr(env)
        value = op.value(env)
        if op.combine is not None or op.dst:
            old = ctx.state.load(op.region, addr_idx)
            if op.dst:
                env[op.dst] = old
            if op.combine is not None:
                value = op.combine(old, value)
        ctx.state.store(op.region, addr_idx, value)
        flat = ctx.state.address(op.region, addr_idx)
        ctx.memory.issue_store(ctx.cycle, flat)
        payload = {"addr": flat, "value": value}
        for name in op.extra_payload:
            payload[name] = env[name]
        ctx.emit_at(
            ctx.cycle + 2,
            Event(EventKind.REACH, token.task_set,
                  op.label or op.region, token.index, payload),
            token.task_uid,
        )
        self.send(token)


class SwitchStage(Stage):
    """Guard steering: predicate true continues, false takes the epilogue."""

    __slots__ = ("epilogue_entry",)

    def __init__(self, ctx, op, name: str) -> None:
        super().__init__(ctx, op, name)
        self.epilogue_entry: Fifo[SimToken] | None = None

    def tick(self) -> None:
        if self.input.visible == 0:
            return
        token = self.input.peek()
        op: Guard = self.op
        taken = bool(op.pred(token.env))
        ledger = self.ctx.ledger
        if taken:
            if not self.can_send():
                self._stall(StallReason.BACKPRESSURE)
                return
            self.input.pop()
            if ledger is not None:
                ledger.fire(token.uid, self.ctx.cycle, self.name)
            self.send(token)
        else:
            if self.epilogue_entry is not None:
                if not self.epilogue_entry.can_push():
                    self._stall(StallReason.BACKPRESSURE)
                    return
                self.input.pop()
                if ledger is not None:
                    ledger.fire(token.uid, self.ctx.cycle, self.name)
                self.ctx.counters.guard_drops.inc()
                self.epilogue_entry.push(token)
            else:
                self.input.pop()
                if ledger is not None:
                    ledger.fire(token.uid, self.ctx.cycle, self.name)
                self.ctx.counters.guard_drops.inc()
                self.ctx.retire(token, "drop")
        self.mark_active()


class ExpandStage(Stage):
    """Dynamic-rate expansion with overlapped row fetches.

    Several expansions stream their rows concurrently (a small fetch
    station, like the load units); children are emitted in arrival order,
    one per cycle, from the head expansion once its stream has landed.
    """

    __slots__ = ("_inflight", "depth")

    def __init__(self, ctx, op, name: str) -> None:
        super().__init__(ctx, op, name)
        # FIFO of in-flight expansions:
        # [token, items, emitted, stream_req or None]
        self._inflight: list[list] = []
        self.depth = ctx.config.station_depth

    def tick(self) -> None:
        ctx = self.ctx
        op: Expand = self.op
        # 1) emit one child from the head expansion.
        if self._inflight:
            entry = self._inflight[0]
            token, items, emitted, stream_req = entry
            if stream_req is not None and \
                    ctx.memory.ready(ctx.cycle, stream_req):
                ctx.quiet = False  # silent mutation: stream retired
                if ctx.ledger is not None:
                    ctx.ledger.mem_ready(token.uid, self.name, stream_req)
                ctx.memory.retire(stream_req)
                entry[3] = stream_req = None
            if stream_req is None:
                if self.can_send():
                    child = token.fork(
                        items[emitted], uid=ctx.next_token_uid()
                    )
                    if ctx.ledger is not None:
                        ctx.ledger.fork(child.uid, ctx.cycle, token.uid)
                    entry[2] += 1
                    self.send(child)
                    self.mark_active()
                    if entry[2] >= len(items):
                        if ctx.ledger is not None:
                            # The parent never retires: its terminal event
                            # is the release at the last child emission.
                            ctx.ledger.release(
                                token.uid, ctx.cycle, self.name, "expand"
                            )
                        self._inflight.pop(0)
                else:
                    self._stall(StallReason.BACKPRESSURE)
        # 2) accept one new expansion (issue its row fetch).
        if self.input.visible and len(self._inflight) < self.depth:
            ctx.quiet = False  # silent mutation: expansion accepted
            token = self.input.pop()
            items = list(op.items(token.env, ctx.state))
            if not items:
                if ctx.ledger is not None:
                    ctx.ledger.fire(token.uid, ctx.cycle, self.name)
                ctx.retire(token, "commit")
                self.mark_active()
                return
            if len(items) > 1:
                ctx.tracker.retain(token.live_handle, len(items) - 1)
            if ctx.ledger is not None:
                ctx.ledger.issue(token.uid, ctx.cycle, self.name)
            traffic = op.traffic(token.env, ctx.state) if op.traffic else 0
            stream_req = (
                ctx.memory.issue_stream(ctx.cycle, traffic)
                if traffic else None
            )
            self._inflight.append([token, items, 0, stream_req])
        elif self.input.visible:
            self._stall(StallReason.MEMORY)

    def busy(self) -> bool:
        return bool(self._inflight) or len(self.input) > 0


class AllocRuleStage(Stage):
    """Rule-lane allocation; stalls the pipeline while the engine is full."""

    __slots__ = ()

    def tick(self) -> None:
        if self.input.visible == 0:
            return
        if not self.can_send():
            self._stall(StallReason.BACKPRESSURE)
            return
        token = self.input.peek()
        op: AllocRule = self.op
        engine = self.ctx.engines[op.resolve(token.env)]
        instance = engine.try_alloc(
            token.index, dict(op.args(token.env)), token.task_uid
        )
        if instance is None:
            self._stall(StallReason.RULE)
            return
        self.input.pop()
        token.lanes.append((engine, instance))
        if self.ctx.ledger is not None:
            self.ctx.ledger.fire(token.uid, self.ctx.cycle, self.name)
        self.send(token)
        self.mark_active()

    def credit_skipped_stalls(self, reason: StallReason, count: int) -> None:
        self.stall_cycles += count
        if reason is StallReason.RULE:
            # Each skipped cycle repeats the probe's failed try_alloc;
            # the head token (stationary) names the engine it targeted.
            token = self.input.peek()
            engine = self.ctx.engines[self.op.resolve(token.env)]
            engine.credit_alloc_stalls(count)


class RendezvousStage(Stage):
    """Out-of-order rendezvous: tokens wait for verdicts in a station."""

    __slots__ = ("station", "depth", "epilogue_entry", "in_order")

    def __init__(self, ctx, op, name: str) -> None:
        super().__init__(ctx, op, name)
        # The waiting station is sized to the rule-lane count: every lane
        # holder can reach its rendezvous, which the deadlock-freedom
        # argument (and the global-scope ordering argument) both require.
        self.station: list[SimToken] = []
        self.depth = max(ctx.config.station_depth, ctx.config.rule_lanes)
        self.epilogue_entry: Fifo[SimToken] | None = None
        self.in_order = not ctx.config.out_of_order

    def tick(self) -> None:
        ctx = self.ctx
        # 1) release one decided token.
        released = False
        blocked = False
        candidates = self.station[:1] if self.in_order else self.station
        for token in list(candidates):
            engine, instance = token.lanes[0]
            if not instance.returned:
                continue
            if instance.value:
                if not self.can_send():
                    blocked = True
                    continue
                self.station.remove(token)
                token.lanes.pop(0)
                engine.release(instance)
                self._record_verdict(token, instance, "pass")
                self.send(token)
            else:
                if self.epilogue_entry is not None and \
                        not self.epilogue_entry.can_push():
                    blocked = True
                    continue
                self.station.remove(token)
                token.lanes.pop(0)
                engine.release(instance)
                ctx.counters.squashes.inc()
                if ctx.obs is not None:
                    ctx.obs.rule_squash(ctx.cycle, engine.name)
                if self.epilogue_entry is not None:
                    self._record_verdict(token, instance, "epilogue")
                    self.epilogue_entry.push(token)
                else:
                    self._record_verdict(token, instance, "squash")
                    ctx.retire(token, "squash")
            self.mark_active()
            released = True
            break
        if blocked and not released:
            # A decided token could not leave: downstream backpressure
            # (previously unaccounted — the cycle showed up as idle).
            self._stall(StallReason.BACKPRESSURE)
        # 2) admit one waiting token into the station.
        if self.input.visible and len(self.station) < self.depth:
            ctx.quiet = False  # silent mutation: admission arms otherwise
            token = self.input.pop()
            if not token.lanes:
                raise SimulationError(
                    f"{self.name}: token reached rendezvous with no rule"
                )
            engine, instance = token.lanes[0]
            if ctx.ledger is not None:
                ctx.ledger.issue(token.uid, ctx.cycle, self.name)
            engine.mark_awaited(instance)
            if instance.rule_type.immediate and not instance.returned:
                # Optimistic speculation: the promise resolves on arrival
                # with whatever the inspection has accumulated so far.
                instance.trigger_otherwise()
                if ctx.ledger is not None and instance.decided_cycle < 0:
                    instance.decided_cycle = ctx.cycle
                    instance.decided_by = -1
            self.station.append(token)
        elif self.input.visible:
            self._stall(StallReason.RULE)

    def _record_verdict(self, token, instance, outcome: str) -> None:
        """Ledger: when/who decided the promise, and how the token left."""
        ledger = self.ctx.ledger
        if ledger is None:
            return
        decided = instance.decided_cycle
        if decided < 0:
            decided = self.ctx.cycle
        ledger.ready(
            token.uid, decided, self.name, instance.decided_by,
            instance.verdict.name.lower(),
        )
        ledger.release(token.uid, self.ctx.cycle, self.name, outcome)

    def busy(self) -> bool:
        return bool(self.station) or len(self.input) > 0


class EnqueueStage(Stage):
    """Task activation: a push port into a workset queue."""

    __slots__ = ()

    def tick(self) -> None:
        if self.input.visible == 0:
            return
        if not self.can_send():
            self._stall(StallReason.BACKPRESSURE)
            return
        token = self.input.peek()
        op: Enqueue = self.op
        if op.when is None or op.when(token.env):
            queue = self.ctx.queues[op.task_set]
            if not queue.can_push():
                self._stall(StallReason.QUEUE)
                self.ctx.counters.queue_full_stalls.inc()
                return
            self.input.pop()
            self.ctx.activate(
                op.task_set, dict(op.fields(token.env)), token.index,
                cause="task", cause_uid=token.uid,
            )
        else:
            self.input.pop()
        if self.ctx.ledger is not None:
            self.ctx.ledger.fire(token.uid, self.ctx.cycle, self.name)
        self.send(token)
        self.mark_active()

    def credit_skipped_stalls(self, reason: StallReason, count: int) -> None:
        self.stall_cycles += count
        if reason is StallReason.QUEUE:
            self.ctx.counters.queue_full_stalls.inc(count)


class CallStage(Stage):
    """Pipelined problem-specific function unit.

    The functional effect is applied atomically at issue (so shared-state
    mutations are serialized by issue order); the token is held for the
    unit's latency and its operand traffic, and the REACH event is
    broadcast at completion.
    """

    __slots__ = ("in_flight", "depth")

    def __init__(self, ctx, op, name: str) -> None:
        super().__init__(ctx, op, name)
        self.in_flight: list[tuple[SimToken, int, int | None]] = []
        self.depth = ctx.config.station_depth

    def tick(self) -> None:
        ctx = self.ctx
        op: Call = self.op
        # 1) complete one token.
        if self.in_flight and not self.can_send():
            self._stall(StallReason.BACKPRESSURE)
        elif self.in_flight:
            for entry in self.in_flight:
                token, done_at, stream_req = entry
                if done_at > ctx.cycle:
                    continue
                if stream_req is not None:
                    if not ctx.memory.ready(ctx.cycle, stream_req):
                        continue
                    ctx.memory.retire(stream_req)
                if op.label:
                    ctx.emit_at(
                        ctx.cycle + 1,
                        Event(EventKind.REACH, token.task_set, op.label,
                              token.index, dict(token.env)),
                        token.task_uid,
                    )
                if ctx.ledger is not None:
                    ready_at = done_at
                    kind = "fu"
                    if stream_req is not None:
                        stream_done = ctx.ledger.mem_take(stream_req)
                        if stream_done > ready_at:
                            ready_at = stream_done
                            kind = "mem_stream"
                    ctx.ledger.ready(token.uid, ready_at, self.name, -1, kind)
                    ctx.ledger.release(token.uid, ctx.cycle, self.name,
                                       "pass")
                self.in_flight.remove(entry)
                self.send(token)
                self.mark_active()
                break
        # 2) issue one token.
        if self.input.visible and len(self.in_flight) < self.depth:
            ctx.quiet = False  # silent mutation: issue applies op.fn
            token = self.input.pop()
            updates = op.fn(token.env, ctx.state)
            if updates:
                token.env.update(updates)
            if op.completes_task and token.live_handle >= 0:
                ctx.tracker.release(token.live_handle)
                token.live_handle = -1
            latency = max(1, _value(op.cycles, token.env))
            traffic = _value(op.traffic, token.env)
            if ctx.ledger is not None:
                ctx.ledger.issue(token.uid, ctx.cycle, self.name)
            stream_req = (
                ctx.memory.issue_stream(ctx.cycle, traffic)
                if traffic > 0 else None
            )
            done_at = ctx.cycle + latency
            if ctx.wakes is not None:
                # Event engine: the latency timer is the one stage-private
                # clock, so its expiry is armed at issue.
                ctx.wakes.arm(done_at)
            self.in_flight.append((token, done_at, stream_req))
        elif self.input.visible:
            self._stall(StallReason.MEMORY)

    def next_event_cycle(self, now: int) -> int:
        # The function-unit latency timer is the one stage-private clock;
        # operand-stream completions are reported by the MemorySystem.
        wake = NEVER
        for _token, done_at, _req in self.in_flight:
            if now < done_at < wake:
                wake = done_at
        return wake

    def busy(self) -> bool:
        return bool(self.in_flight) or len(self.input) > 0


_STAGE_CLASSES = {
    Const: ConstStage,
    Alu: AluStage,
    Label: LabelStage,
    Load: LoadStage,
    Store: StoreStage,
    Guard: SwitchStage,
    Expand: ExpandStage,
    AllocRule: AllocRuleStage,
    Rendezvous: RendezvousStage,
    Enqueue: EnqueueStage,
    Call: CallStage,
}


def make_stage(ctx, op, name: str) -> Stage:
    """Instantiate the simulated stage for a kernel primitive op."""
    for op_type, stage_cls in _STAGE_CLASSES.items():
        if isinstance(op, op_type):
            return stage_cls(ctx, op, name)
    raise SimulationError(f"no stage template for op {op!r}")
