"""Top-level accelerator simulation: Figure 7 assembled and clocked.

Builds every component from an :class:`ApplicationSpec` and a synthesized
:class:`Datapath`, runs the cycle loop to completion, verifies the
functional result against the application's oracle, and reports cycles,
utilization, squash rates and memory statistics.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.core.events import Event, EventKind
from repro.core.indexing import TaskIndex
from repro.core.spec import ApplicationSpec
from repro.errors import (
    DeadlockError,
    RecoveryExhaustedError,
    ReproError,
    SimulationError,
    SpecificationError,
)
from repro.eval.platforms import HARP, HarpPlatform
from repro.obs import MetricsRegistry, Observability
from repro.sim.events import EventScheduler
from repro.sim.fastpath import FastForwardScheduler
from repro.sim.faults import FaultPlan
from repro.sim.host import HostAdapter
from repro.sim.invariants import DEFAULT_CHECK_INTERVAL, InvariantChecker
from repro.sim.ledger import TokenLedger
from repro.sim.live import LiveIndexTracker
from repro.sim.memory import MemorySystem
from repro.sim.pipeline import PipelineInstance
from repro.sim.rule_engine import RuleEngineSim
from repro.sim.stages import CallStage
from repro.sim.stats import SimCounters, SimStats
from repro.sim.taskqueue import MultiBankTaskQueue
from repro.sim.token import SimToken
from repro.synthesis.datapath import Datapath, build_datapath


@dataclass(frozen=True)
class SimConfig:
    """Microarchitectural knobs (ablation levers)."""

    out_of_order: bool = True      # Section 5.2's dynamic dataflow reordering
    station_depth: int = 8
    fifo_depth: int = 4
    queue_banks: int = 4
    queue_depth_per_bank: int = 4096
    rule_lanes: int = 32
    # Next-line prefetch on load misses (extension; off = paper baseline).
    prefetch: bool = False
    # Computing the minimum waiting index across all pipelines is a
    # comparator-tree reduction plus a broadcast — a multi-cycle path in
    # hardware (Figure 8(c)(4)), modelled as a refresh interval.
    minimum_broadcast_interval: int = 4
    max_cycles: int = 30_000_000
    deadlock_window: int = 200_000
    # Simulation engine: "dense" ticks every component every cycle;
    # "fast" is the scan-based idle-skipping core (sim/fastpath.py);
    # "event" is the priority-queue discrete-event core (sim/events.py).
    # All three are cycle-exact (see docs/simulator.md).
    engine: str = "dense"
    # Legacy alias for engine="fast", kept so existing callers and
    # cached job digests keep working; mutually exclusive with
    # engine="event".
    fast_forward: bool = False
    # Minimum-jump hysteresis (fast engine only): a projected skip
    # shorter than this many cycles is not worth the wake-up scan's
    # overhead, so the fast loop keeps stepping densely instead.  Cycle
    # counts are unaffected either way — only which cycles are simulated
    # vs replayed changes.  The event engine probes in O(1) and ignores
    # this knob.
    ff_min_jump: int = 8

    def __post_init__(self) -> None:
        for name in (
            "station_depth", "fifo_depth", "queue_banks",
            "queue_depth_per_bank", "rule_lanes",
            "minimum_broadcast_interval", "max_cycles", "deadlock_window",
            "ff_min_jump",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise SpecificationError(
                    f"SimConfig.{name} must be a positive integer, "
                    f"got {value!r}"
                )
        if self.engine not in ("dense", "fast", "event"):
            raise SpecificationError(
                f"SimConfig.engine must be 'dense', 'fast' or 'event', "
                f"got {self.engine!r}"
            )
        if self.fast_forward and self.engine == "event":
            raise SpecificationError(
                "SimConfig.fast_forward conflicts with engine='event'; "
                "pick one engine"
            )

    def resolved_engine(self) -> str:
        """The engine to run: folds the legacy fast_forward alias in."""
        if self.fast_forward:
            return "fast"
        return self.engine


@dataclass
class SimResult:
    """Outcome of one accelerator run."""

    app: str
    cycles: int
    seconds: float
    stats: SimStats
    memory_bytes: int
    memory_loads: int
    memory_hit_rate: float
    utilization: float
    squash_fraction: float
    bandwidth_scale: float
    # Observability: the run's metrics registry, and — when the run was
    # observed — the Observability bundle of the *finishing* simulator
    # (under rollback recovery that is a revived clone, not the caller's
    # original instance).
    metrics: MetricsRegistry | None = None
    obs: Observability | None = None
    # Fast-forward telemetry (zero for dense runs).  Deliberately kept
    # out of SimStats so dense and fast statistics stay bit-identical.
    ff_jumps: int = 0
    ff_cycles_skipped: int = 0
    # Which engine produced the run: "dense" | "fast" | "event".
    engine: str = "dense"
    # Per-token provenance record (None unless a TokenLedger was
    # attached); obs/critpath.py turns it into a critical path.
    ledger: TokenLedger | None = None


class AcceleratorSim:
    """The simulation context plus the cycle loop."""

    def __init__(
        self,
        spec: ApplicationSpec,
        datapath: Datapath | None = None,
        platform: HarpPlatform = HARP,
        config: SimConfig = SimConfig(),
        replicas: dict[str, int] | None = None,
        tracer=None,
        faults: FaultPlan | None = None,
        check_interval: int | None = None,
        obs: Observability | None = None,
        ledger: TokenLedger | None = None,
    ) -> None:
        self.spec = spec
        self.platform = platform
        self.config = config
        self.tracer = tracer
        self.faults = faults
        self.obs = obs
        self.ledger = ledger
        # Per-instance token uid counter: ledgers/traces/goldens get the
        # same uids no matter how many sims ran earlier in the process.
        # itertools.count deep-copies, so a rollback replays identically.
        self._token_uids = itertools.count()
        # Hot-path counters live in a metrics registry; when an
        # Observability bundle is attached its registry is used directly
        # so traces and metrics describe the same run.
        self.metrics = obs.registry if obs is not None else MetricsRegistry()
        self.counters = SimCounters.register(self.metrics)
        self.cycle = 0
        self.stats = SimStats()
        self.state = spec.make_state()
        self.minter = spec.make_loop_nest()
        self.tracker = LiveIndexTracker()
        self.memory = MemorySystem(platform, prefetch=config.prefetch,
                                   faults=faults, obs=obs, ledger=ledger)
        self.active_stages_this_cycle = 0
        # Robustness machinery: an invariant sanitizer (None = disabled)
        # and a checkpoint manager attached by run_resilient.
        self.checker = (
            InvariantChecker(self, interval=check_interval)
            if check_interval is not None else None
        )
        self.checkpoints = None
        self._started = False

        if datapath is None:
            datapath = build_datapath(
                spec,
                replicas=replicas or {name: 2 for name in spec.task_sets},
                rule_lanes=config.rule_lanes,
                queue_banks=config.queue_banks,
                station_depth=config.station_depth,
            )
        self.datapath = datapath

        self.queues: dict[str, MultiBankTaskQueue] = {
            name: MultiBankTaskQueue(
                name, config.queue_banks, config.queue_depth_per_bank,
                pop_policy=(
                    "priority" if name in spec.priority_fields else "fifo"
                ),
                faults=faults, obs=obs, ledger=ledger,
            )
            for name in spec.task_sets
        }
        # Ordered admission: a credit counter between each queue and its
        # pipelines caps in-flight tasks at the rule-lane count, so the
        # minimum task can always reach its rendezvous (the hardware
        # equivalent of a deterministic-reservation window).
        self.admission_credits: dict[str, int] | None = (
            {name: config.rule_lanes for name in spec.task_sets}
            if spec.ordered_admission else None
        )
        self.engines: dict[str, RuleEngineSim] = {
            name: RuleEngineSim(name, rule_type, config.rule_lanes,
                                faults=faults, obs=obs, ledger=ledger)
            for name, rule_type in spec.rules.items()
        }
        self.pipelines: list[PipelineInstance] = []
        for task_set, program in datapath.programs.items():
            for replica in range(datapath.replicas[task_set]):
                self.pipelines.append(
                    PipelineInstance(self, program, replica)
                )
        self.stats.total_stages = sum(
            p.stage_count() for p in self.pipelines
        )
        self.host = HostAdapter(self, spec)
        self._event_heap: list[tuple[int, int, Event, int]] = []
        self._event_seq = 0
        self._last_progress_cycle = 0
        # Precomputed topology: the cycle loop walks these flat lists
        # instead of chasing pipeline/dict indirections every cycle.
        self._stages = [s for p in self.pipelines for s in p.stages]
        self._fifos = [s.input for s in self._stages]
        self._timed_stages = [
            s for s in self._stages if isinstance(s, CallStage)
        ]
        self._engine_list = list(self.engines.values())
        # Bound methods, resolved once: the per-cycle loop is pure
        # dispatch, with no attribute chasing.  Checkpoint deepcopies
        # rebind these to the revived copies via the shared memo.
        self._stage_ticks = [s.tick for s in self._stages]
        self._fifo_commits = [f.commit for f in self._fifos]
        self._queue_list = list(self.queues.values())
        # Fast-forward: `quiet` is cleared by every state-mutating action
        # inside a cycle; a cycle that ends quiet is provably a repeat.
        self.quiet = True
        # Event-engine wake queue; EventScheduler plants its WakeQueue
        # here so emit_at and the stages can arm wake-ups at issue time.
        self.wakes = None
        self.engine = config.resolved_engine()
        if self.engine == "event":
            self.ff = EventScheduler(self)
        elif self.engine == "fast":
            self.ff = FastForwardScheduler(self)
        else:
            self.ff = None

    # -- services stages call ---------------------------------------------------

    def next_token_uid(self) -> int:
        """Allocate a token uid from this simulation's private counter."""
        return next(self._token_uids)

    def activate(
        self, task_set: str, fields: dict[str, Any],
        parent: TaskIndex | None,
        cause: str = "seed", cause_uid: int = -1,
    ) -> None:
        """Mint an index, register liveness, enqueue, broadcast ACTIVATE."""
        self.quiet = False
        index = self.minter.mint(task_set, fields, parent)
        handle = self.tracker.register(index)
        if self.ledger is not None:
            self.ledger.activate(handle, self.cycle, cause, cause_uid)
        self.queues[task_set].push(index, fields, handle)
        self.counters.tasks_activated.inc()
        self.emit_at(
            self.cycle + 1,
            Event(EventKind.ACTIVATE, task_set, "", index, dict(fields)),
            source_uid=-1,
        )

    def retire(self, token: SimToken, outcome: str) -> None:
        """Token leaves the datapath: free liveness and leftover lanes."""
        if outcome == "commit":
            self.counters.commits.inc()
        if self.ledger is not None:
            self.ledger.retire(token.uid, self.cycle, outcome)
        for engine, instance in token.lanes:
            engine.release(instance)
        token.lanes.clear()
        if token.live_handle >= 0:
            self.tracker.release(token.live_handle)
            token.live_handle = -1
        if self.admission_credits is not None and token.task_uid == token.uid:
            # Only the root token of a task returns the admission credit
            # (Expand siblings share their parent's).
            self.admission_credits[token.task_set] += 1

    def emit_at(self, when: int, event: Event, source_uid: int) -> None:
        heapq.heappush(
            self._event_heap, (when, self._event_seq, event, source_uid)
        )
        self._event_seq += 1

    # -- cycle loop ------------------------------------------------------------

    def _deliver_events(self) -> None:
        heap = self._event_heap
        engines = self._engine_list
        pop = heapq.heappop
        delivered = self.counters.events_delivered
        cycle = self.cycle
        while heap and heap[0][0] <= cycle:
            _, _, event, source_uid = pop(heap)
            delivered.value += 1
            self.quiet = False
            for engine in engines:
                engine.deliver(event, source_uid)

    def _work_remaining(self) -> bool:
        for queue in self._queue_list:
            if len(queue):
                return True
        for pipeline in self.pipelines:
            if pipeline.busy():
                return True
        if self.host.busy() or not self.host.exhausted:
            return True
        if self._event_heap:
            return True
        return False

    def step(self) -> None:
        """Advance one cycle."""
        if self.obs is not None:
            # Components without a cycle argument (queues, engines, the
            # retire port) timestamp their events off this.
            self.obs.now = self.cycle
        if self.ledger is not None:
            self.ledger.now = self.cycle
        if self.faults is not None:
            self.faults.advance(self.cycle)
        if self.checkpoints is not None:
            self.checkpoints.maybe_capture()
        if self.checker is not None:
            self.checker.maybe_check()
        self.active_stages_this_cycle = 0
        self.quiet = True
        if self.ff is not None:
            self.ff.cycle_stalls.clear()
        if self._event_heap:
            self._deliver_events()
        self.host.tick()
        for tick in self._stage_ticks:
            tick()
        if self.cycle % self.config.minimum_broadcast_interval == 0:
            if self.spec.otherwise_scope == "global":
                minimum = self.tracker.minimum()
                for engine in self._engine_list:
                    if engine.broadcast_minimum(minimum):
                        self.quiet = False
            else:
                # Lane scope (Figure 8): each engine broadcasts the minimum
                # parent index over its own allocated lanes.
                for engine in self._engine_list:
                    if engine.broadcast_minimum(
                        engine.min_allocated_index()
                    ):
                        self.quiet = False
        for commit in self._fifo_commits:
            commit()
        self.counters.active_stage_cycles.value += \
            self.active_stages_this_cycle
        if self.active_stages_this_cycle or self.memory.pending(self.cycle):
            self._last_progress_cycle = self.cycle
        self.cycle += 1
        self.stats.cycles = self.cycle

    def _check_limits(self) -> None:
        """Runaway and deadlock guards, shared by both run loops.

        The fast loop calls this after a skip as well, so both errors
        raise at exactly the cycle a dense run would raise them at.
        """
        if self.cycle >= self.config.max_cycles:
            raise SimulationError(
                f"{self.spec.name}: exceeded {self.config.max_cycles} "
                "cycles"
            )
        if (
            self.cycle - self._last_progress_cycle
            > self.config.deadlock_window
        ):
            report = []
            for pipeline in self.pipelines:
                report.extend(pipeline.stuck_report())
            raise DeadlockError(self.cycle, "; ".join(report[:8]))

    def _run_fast(self) -> None:
        """The fast-forward loop: dense probe cycles, idle spans skipped.

        Every executed cycle is a full dense :meth:`step`; when one ends
        quiet (no stage fired, no silent mutation, no event delivered, no
        otherwise triggered), the machine is stationary and the clock
        jumps to the scheduler's earliest wake-up, crediting the skipped
        repeats of the probe cycle's stalls along the way.
        """
        ff = self.ff
        while self._work_remaining():
            self.step()
            self._check_limits()
            if (
                self.quiet
                and self.active_stages_this_cycle == 0
                and self.cycle >= ff.probe_after
            ):
                target = ff.jump_target()
                if target > self.cycle:
                    ff.skip_to(target)
                    self._check_limits()

    def run(self, verify: bool = True) -> SimResult:
        """Clock the accelerator until all work drains; verify the answer."""
        if not self._started:
            self.host.start()
            self._started = True
        if self.ff is not None:
            self._run_fast()
        else:
            while self._work_remaining():
                self.step()
                self._check_limits()
        self.stats.sync_from(self.metrics)
        for pipeline in self.pipelines:
            for stage in pipeline.stages:
                self.stats.per_stage_active[stage.name] = \
                    stage.active_cycles
                self.stats.per_stage_stalls[stage.name] = \
                    stage.stall_cycles
        if self.checker is not None:
            self.checker.check(at_drain=True)
        if self.faults is not None:
            self.stats.faults_injected = self.faults.fired_count
            self.stats.events_dropped = sum(
                e.stats.events_dropped for e in self.engines.values()
            )
            self.stats.events_duplicated = sum(
                e.stats.events_duplicated for e in self.engines.values()
            )
        if verify:
            self.spec.verify(self.state)
        mem = self.memory.stats
        hit_rate = mem.load_hits / mem.loads if mem.loads else 0.0
        return SimResult(
            app=self.spec.name,
            cycles=self.cycle,
            seconds=self.cycle / self.platform.clock_hz,
            stats=self.stats,
            memory_bytes=mem.bytes_transferred,
            memory_loads=mem.loads,
            memory_hit_rate=hit_rate,
            utilization=self.stats.pipeline_utilization,
            squash_fraction=self.stats.squash_fraction,
            bandwidth_scale=self.platform.bandwidth_scale,
            metrics=self.metrics,
            obs=self.obs,
            ff_jumps=self.ff.jumps if self.ff is not None else 0,
            ff_cycles_skipped=(
                self.ff.cycles_skipped if self.ff is not None else 0
            ),
            engine=self.engine,
            ledger=self.ledger,
        )


def simulate_app(
    spec: ApplicationSpec,
    platform: HarpPlatform = HARP,
    config: SimConfig = SimConfig(),
    replicas: dict[str, int] | None = None,
    verify: bool = True,
    obs: Observability | None = None,
    ledger: TokenLedger | None = None,
) -> SimResult:
    """Convenience wrapper: build, run, verify, report."""
    sim = AcceleratorSim(
        spec, platform=platform, config=config, replicas=replicas, obs=obs,
        ledger=ledger,
    )
    return sim.run(verify=verify)


# -- checkpoint/rollback recovery ------------------------------------------


@dataclass
class FailureRecord:
    """One failure the resilient driver recovered from."""

    cycle: int
    attempt: int
    error: str


@dataclass
class ResilientResult:
    """Outcome of a :func:`run_resilient` execution."""

    result: SimResult
    attempts: int
    rollbacks: int
    degradations: int
    failures: list[FailureRecord] = field(default_factory=list)

    @property
    def recovered(self) -> int:
        return len(self.failures)


def _degrade(sim: AcceleratorSim, level: int) -> None:
    """Graceful degradation after repeated failures at the same point:
    halve the channel bandwidth and shrink every rule engine's lanes."""
    for _ in range(level):
        channel = sim.memory.channel
        channel.bytes_per_cycle = max(1.0, channel.bytes_per_cycle / 2)
        for engine in sim.engines.values():
            engine.max_lanes = max(1, engine.max_lanes // 2)


def run_resilient(
    spec: ApplicationSpec,
    platform: HarpPlatform = HARP,
    config: SimConfig = SimConfig(),
    *,
    replicas: dict[str, int] | None = None,
    faults: FaultPlan | None = None,
    check_interval: int | None = DEFAULT_CHECK_INTERVAL,
    checkpoint_interval: int = 20_000,
    max_attempts: int = 8,
    degrade: bool = True,
    verify: bool = True,
    obs: Observability | None = None,
    ledger: TokenLedger | None = None,
) -> ResilientResult:
    """Run under checkpoint/rollback recovery.

    The simulator takes a snapshot every ``checkpoint_interval`` cycles
    and runs the invariant sanitizer every ``check_interval`` cycles.  On
    any failure — an invariant trip, a deadlock, a simulation error, or a
    failed functional verification — the driver rolls back to the last
    good checkpoint, disarms the transient faults that already fired, and
    retries.  When a retry fails at the same point again it backs off:
    the newest checkpoint is discarded (falling back toward the initial
    snapshot) and, with ``degrade``, the accelerator re-runs in a
    degraded mode (half bandwidth, half rule lanes per level).
    """
    from repro.sim.checkpoint import CheckpointManager

    sim = AcceleratorSim(
        spec, platform=platform, config=config, replicas=replicas,
        faults=faults, check_interval=check_interval, obs=obs,
        ledger=ledger,
    )
    manager = CheckpointManager(sim, interval=checkpoint_interval)
    sim.checkpoints = manager
    failures: list[FailureRecord] = []
    degradations = 0
    last_failure_cycle: int | None = None
    for attempt in range(1, max_attempts + 1):
        try:
            result = sim.run(verify=verify)
        except (ReproError, AssertionError) as exc:
            failure = FailureRecord(
                cycle=sim.cycle, attempt=attempt,
                error=f"{type(exc).__name__}: {exc}",
            )
            failures.append(failure)
            if attempt == max_attempts:
                raise RecoveryExhaustedError(
                    attempt, [f.error for f in failures]
                ) from exc
            if faults is not None:
                faults.disarm_fired()
            repeated = (
                last_failure_cycle is not None
                and failure.cycle <= last_failure_cycle
            )
            last_failure_cycle = failure.cycle
            sim = manager.rollback(drop_latest=repeated)
            if degrade and repeated:
                degradations += 1
            # Degradation mutates component state the checkpoint predates,
            # so the accumulated level is re-applied after every rollback.
            _degrade(sim, degradations)
            continue
        result.stats.rollbacks = manager.rollbacks
        result.stats.checkpoints_taken = manager.captures
        if faults is not None:
            result.stats.faults_injected = faults.fired_count
        return ResilientResult(
            result=result,
            attempts=attempt,
            rollbacks=manager.rollbacks,
            degradations=degradations,
            failures=failures,
        )
    raise RecoveryExhaustedError(max_attempts, [f.error for f in failures])
