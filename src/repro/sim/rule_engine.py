"""Simulated rule engines (Figure 8).

One engine per rule type: a lane allocator (AllocRule stalls its pipeline
when no lane is free), lanes executing the compiled ECA clauses against
events broadcast on the event bus, a return buffer the rendezvous stages
poll, and the minimum-live-index broadcast that triggers otherwise clauses
for lanes whose parent is the (tied-)minimum waiting task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.events import Event
from repro.core.indexing import TaskIndex
from repro.core.rule import RuleInstance, RuleType, RuleVerdict
from repro.sim.fastpath import NEVER


@dataclass
class RuleEngineStats:
    allocations: int = 0
    alloc_stalls: int = 0
    otherwise_fired: int = 0
    clause_fired: int = 0
    requires_fired: int = 0
    peak_occupancy: int = 0
    events_dropped: int = 0      # injected fault: delivery lost
    events_duplicated: int = 0   # injected fault: delivery repeated
    fault_alloc_stalls: int = 0  # stalls charged to failed lanes


@dataclass(slots=True)
class _Lane:
    instance: RuleInstance
    owner_uid: int
    awaited: bool = False


class RuleEngineSim:
    """One rule engine with a fixed number of lanes.

    ``faults`` (a :class:`~repro.sim.faults.FaultPlan`, or None) models
    transient lane failures and event-bus glitches; every hook is a
    single identity test when fault injection is disabled.
    """

    def __init__(self, name: str, rule_type: RuleType, lanes: int,
                 faults=None, obs=None, ledger=None) -> None:
        self.name = name
        self.rule_type = rule_type
        self.max_lanes = lanes
        self.faults = faults
        self.obs = obs  # Observability hooks (None = zero cost)
        self.ledger = ledger  # TokenLedger decision provenance (None = off)
        self.lanes: dict[int, _Lane] = {}  # keyed by id(instance)
        self.stats = RuleEngineStats()
        # Event-independent broadcast state, hoisted out of deliver():
        # the clause list (patterns are static per rule type, so the
        # triggered subset is a function of the event alone) and the
        # requires-flag set every instance compares against.
        self._clauses = tuple(rule_type.clauses)
        self._requires = frozenset(rule_type.requires)

    # -- allocation ---------------------------------------------------------

    def try_alloc(
        self,
        parent_index: TaskIndex,
        args: Mapping[str, Any],
        owner_uid: int,
    ) -> RuleInstance | None:
        """Allocate a lane; None when the engine is full (pipeline stalls)."""
        available = self.max_lanes
        if self.faults is not None:
            failed = self.faults.lanes_failed(self.name)
            if failed:
                available = max(0, available - failed)
                if len(self.lanes) >= available:
                    self.stats.fault_alloc_stalls += 1
        if len(self.lanes) >= available:
            self.stats.alloc_stalls += 1
            return None
        instance = self.rule_type.instantiate(parent_index, args)
        self.lanes[id(instance)] = _Lane(instance, owner_uid)
        self.stats.allocations += 1
        self.stats.peak_occupancy = max(
            self.stats.peak_occupancy, len(self.lanes)
        )
        if self.obs is not None:
            self.obs.rule_promise(self.name, len(self.lanes))
        return instance

    def mark_awaited(self, instance: RuleInstance) -> None:
        """The parent token reached its rendezvous (otherwise now armed)."""
        lane = self.lanes.get(id(instance))
        if lane is not None:
            lane.awaited = True
            if self.obs is not None:
                self.obs.rule_rendezvous(self.name)

    def release(self, instance: RuleInstance) -> None:
        """The rendezvous consumed the verdict; free the lane."""
        lane = self.lanes.pop(id(instance), None)
        if lane is None:
            return
        if instance.verdict is RuleVerdict.OTHERWISE:
            self.stats.otherwise_fired += 1
        elif instance.verdict is RuleVerdict.REQUIRES:
            self.stats.requires_fired += 1
        elif instance.verdict is RuleVerdict.CLAUSE:
            self.stats.clause_fired += 1
        if self.obs is not None:
            self.obs.rule_return(self.name, instance.verdict.name.lower(),
                                 len(self.lanes))

    # -- event bus ------------------------------------------------------------

    def deliver(self, event: Event, source_uid: int) -> None:
        """Broadcast one event to every lane (skipping the source's own)."""
        if not self.lanes:
            return
        rounds = 1
        if self.faults is not None:
            action = self.faults.event_action(self.name)
            if action == "drop":
                self.stats.events_dropped += 1
                return
            if action == "dup":
                self.stats.events_duplicated += 1
                rounds = 2
        # Filter clauses once per broadcast, not once per lane: patterns
        # are static per rule type, so lanes only differ in conditions.
        # A rule with pending requires-flags can only complete on a
        # satisfy action, which needs a triggered clause — so an event
        # that triggers nothing is a no-op for every lane.
        triggered = [c for c in self._clauses if c.triggered_by(event)]
        if not triggered:
            return
        requires = self._requires
        ledger = self.ledger
        for _ in range(rounds):
            for lane in self.lanes.values():
                if lane.owner_uid == source_uid:
                    continue
                instance = lane.instance
                if instance.value is None:
                    instance.observe_triggered(event, triggered, requires)
                    if (
                        ledger is not None
                        and instance.value is not None
                        and instance.decided_cycle < 0
                    ):
                        # The promise just resolved: remember when and
                        # which token's event decided it.
                        instance.decided_cycle = ledger.now
                        instance.decided_by = source_uid

    def min_allocated_index(self) -> TaskIndex | None:
        """Minimum parent index over this engine's allocated lanes.

        This is the "minimum task index at this rendezvous across all
        pipelines" broadcast of Figure 8(c)(4): lane-scoped, so a full
        engine always releases its earliest waiter (deadlock freedom).
        """
        indices = [lane.instance.parent_index for lane in self.lanes.values()]
        return min(indices) if indices else None

    def broadcast_minimum(self, min_live: TaskIndex | None) -> int:
        """Fire otherwise for awaited lanes whose parent ties the minimum.

        Returns the number of lanes triggered (a trigger resolves the
        promise — progress the fast-forward core must not skip over).
        """
        fired = 0
        ledger = self.ledger
        for lane in self.lanes.values():
            if not lane.awaited or lane.instance.returned:
                continue
            parent = lane.instance.parent_index
            if min_live is None or not min_live.earlier_than(parent):
                lane.instance.trigger_otherwise()
                if ledger is not None and lane.instance.decided_cycle < 0:
                    # Otherwise is a liveness escape, not a causal answer:
                    # no deciding token, only the broadcast cycle.
                    lane.instance.decided_cycle = ledger.now
                    lane.instance.decided_by = -1
                fired += 1
        return fired

    def would_fire_otherwise(self, min_live: TaskIndex | None) -> bool:
        """Pure predicate: would :meth:`broadcast_minimum` trigger a lane?

        Evaluated by the fast-forward scheduler on stationary state, so a
        minimum-broadcast boundary only counts as a wake-up when crossing
        it would actually change something.
        """
        for lane in self.lanes.values():
            if not lane.awaited or lane.instance.returned:
                continue
            parent = lane.instance.parent_index
            if min_live is None or not min_live.earlier_than(parent):
                return True
        return False

    # -- fast-forward interface -----------------------------------------------

    def credit_alloc_stalls(self, count: int) -> None:
        """Replay ``count`` skipped repeats of one failed allocation.

        Re-evaluates the same occupancy test :meth:`try_alloc` applied in
        the probe cycle — lane and fault state are frozen across a skip,
        so the branch outcome is identical.
        """
        self.stats.alloc_stalls += count
        if self.faults is not None:
            failed = self.faults.lanes_failed(self.name)
            if failed and len(self.lanes) >= max(0, self.max_lanes - failed):
                self.stats.fault_alloc_stalls += count

    def next_event_cycle(self, now: int) -> int:
        """Engines are event-driven: deliveries wake via the event heap
        and otherwise triggers via the broadcast-boundary predicate."""
        return NEVER

    @property
    def occupancy(self) -> int:
        return len(self.lanes)
