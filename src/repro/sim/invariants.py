"""Runtime invariant checking (a sanitizer for the accelerator simulator).

The simulator's correctness rests on structural invariants that a real
dataflow runtime must *keep* checking, not merely assume: the minimum
waiting task can always make progress (liveness), every live-index
registration is balanced by exactly the references held in queues and
pipelines (conservation), admission credits never leak, no rule-engine
lane outlives the token that allocated it, and the broadcast minimum only
moves forward in the well-order (monotonicity).

:class:`InvariantChecker` verifies all of them every ``interval`` cycles
and again at drain, raising a cycle-stamped
:class:`~repro.errors.InvariantViolation` far earlier than the 200k-cycle
deadlock window would fire.  The walk touches every in-flight token, so
the default interval keeps the overhead well under 5% of wall clock.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.errors import InvariantViolation
from repro.sim.stages import (
    CallStage,
    ExpandStage,
    LoadStage,
    RendezvousStage,
)
from repro.sim.token import SimToken

DEFAULT_CHECK_INTERVAL = 2048


@dataclass(frozen=True)
class Violation:
    """One failed invariant, for the diagnostic report."""

    invariant: str
    component: str
    detail: str

    def format(self) -> str:
        return f"[{self.invariant}] {self.component}: {self.detail}"


class InvariantChecker:
    """Periodic sanitizer over one :class:`AcceleratorSim` instance."""

    def __init__(self, sim, interval: int = DEFAULT_CHECK_INTERVAL) -> None:
        self.sim = sim
        self.interval = max(1, interval)
        self.checks = 0
        self._last_minimum: tuple | None = None

    # -- token walk -----------------------------------------------------------

    def walk_tokens(self):
        """Yield ``(token, live_refs_held)`` for every in-flight token.

        An Expand in-flight entry holds one live reference per not-yet
        emitted child (the parent registered ``len(items)`` references and
        each emitted child carries one away).
        """
        for pipeline in self.sim.pipelines:
            for stage in pipeline.stages:
                for token in stage.input.drain():
                    yield token, 1
                if isinstance(stage, LoadStage):
                    for token, _req in stage.station:
                        yield token, 1
                elif isinstance(stage, RendezvousStage):
                    for token in stage.station:
                        yield token, 1
                elif isinstance(stage, CallStage):
                    for token, _done, _req in stage.in_flight:
                        yield token, 1
                elif isinstance(stage, ExpandStage):
                    for token, items, emitted, _req in stage._inflight:
                        yield token, len(items) - emitted

    # -- the check ------------------------------------------------------------

    def maybe_check(self) -> None:
        """Run the sanitizer when the check interval elapses."""
        if self.sim.cycle > 0 and self.sim.cycle % self.interval == 0:
            self.check()

    def next_check_cycle(self, now: int) -> int:
        """Next sanitizer boundary — a fast-forward wake-up, so checks
        (and ``stats.invariant_checks``) match a dense run exactly."""
        return ((now // self.interval) + 1) * self.interval

    def check(self, at_drain: bool = False) -> None:
        """Verify every invariant; raise :class:`InvariantViolation`."""
        self.checks += 1
        self.sim.stats.invariant_checks += 1
        violations: list[Violation] = []
        tokens = list(self.walk_tokens())
        self._check_live_handles(tokens, violations)
        self._check_admission_credits(tokens, violations)
        self._check_rule_lanes(tokens, violations)
        self._check_queues(violations)
        self._check_minimum_monotone(violations)
        if at_drain:
            self._check_drained(violations)
        else:
            self._check_liveness(violations)
        if violations:
            first = violations[0]
            report = "; ".join(v.format() for v in violations[:6])
            raise InvariantViolation(
                self.sim.cycle, first.invariant, first.component, report
            )

    # -- individual invariants -------------------------------------------------

    def _check_live_handles(
        self, tokens: list[tuple[SimToken, int]],
        violations: list[Violation],
    ) -> None:
        """Conservation: tracker refcounts == references actually held."""
        held: Counter = Counter()
        for token, refs in tokens:
            if token.live_handle >= 0 and refs:
                held[token.live_handle] += refs
        for queue in self.sim.queues.values():
            for _index, _fields, handle in queue.entries():
                held[handle] += 1
        tracked = self.sim.tracker.snapshot()
        for handle, (index, refs) in tracked.items():
            if held.get(handle, 0) != refs:
                violations.append(Violation(
                    "live-handle-conservation", "LiveIndexTracker",
                    f"handle {handle} (index {index.positions}) has "
                    f"{refs} registered refs but {held.get(handle, 0)} "
                    f"held by queues/pipelines",
                ))
        for handle, refs in held.items():
            if handle not in tracked:
                violations.append(Violation(
                    "live-handle-conservation", "LiveIndexTracker",
                    f"{refs} dangling reference(s) to released handle "
                    f"{handle}",
                ))

    def _check_admission_credits(
        self, tokens: list[tuple[SimToken, int]],
        violations: list[Violation],
    ) -> None:
        """Credits + in-flight root tokens == rule_lanes, per task set."""
        credits = self.sim.admission_credits
        if credits is None:
            return
        lanes = self.sim.config.rule_lanes
        roots: Counter = Counter()
        for token, _refs in tokens:
            if token.uid == token.task_uid:
                roots[token.task_set] += 1
        for task_set, value in credits.items():
            if not 0 <= value <= lanes:
                violations.append(Violation(
                    "credit-bounds", f"queue {task_set!r}",
                    f"admission credits {value} outside [0, {lanes}]",
                ))
                continue
            total = value + roots.get(task_set, 0)
            if total != lanes:
                violations.append(Violation(
                    "credit-conservation", f"queue {task_set!r}",
                    f"credits {value} + in-flight roots "
                    f"{roots.get(task_set, 0)} != rule_lanes {lanes}",
                ))

    def _check_rule_lanes(
        self, tokens: list[tuple[SimToken, int]],
        violations: list[Violation],
    ) -> None:
        """Every allocated lane is referenced by some in-flight token."""
        referenced: set[int] = set()
        for token, _refs in tokens:
            for _engine, instance in token.lanes:
                referenced.add(id(instance))
        for name, engine in self.sim.engines.items():
            for key, lane in engine.lanes.items():
                if key != id(lane.instance):
                    violations.append(Violation(
                        "lane-keying", f"engine {name!r}",
                        f"lane key {key} does not match its instance id "
                        f"{id(lane.instance)}",
                    ))
                elif key not in referenced:
                    violations.append(Violation(
                        "lane-conservation", f"engine {name!r}",
                        f"lane for parent {lane.instance.parent_index} "
                        f"(owner uid {lane.owner_uid}) is referenced by "
                        f"no in-flight token",
                    ))

    def _check_queues(self, violations: list[Violation]) -> None:
        for queue in self.sim.queues.values():
            occupancy = queue.bank_occupancy()
            for slot, depth in enumerate(occupancy):
                if depth > queue.depth_per_bank:
                    violations.append(Violation(
                        "queue-occupancy", f"queue {queue.task_set!r}",
                        f"bank {slot} holds {depth} > depth "
                        f"{queue.depth_per_bank}",
                    ))
            if queue.pop_policy == "priority":
                heap_total = sum(len(h) for h in queue._heaps)
                if heap_total != sum(occupancy):
                    violations.append(Violation(
                        "queue-occupancy", f"queue {queue.task_set!r}",
                        f"priority heaps hold {heap_total} entries but "
                        f"banks mark {sum(occupancy)}",
                    ))

    def _check_minimum_monotone(self, violations: list[Violation]) -> None:
        """The global live minimum never moves backwards in the well-order.

        Every new task extends a live parent's index, so the minimum over
        live indices (with the host horizon held down) is non-decreasing;
        a decrease means an index escaped tracking.
        """
        minimum = self.sim.tracker.minimum()
        if minimum is None:
            return
        positions = tuple(minimum.positions)
        if self._last_minimum is not None and positions < self._last_minimum:
            violations.append(Violation(
                "minimum-monotonicity", "LiveIndexTracker",
                f"broadcast minimum moved backwards: {self._last_minimum} "
                f"-> {positions}",
            ))
        self._last_minimum = positions

    def _check_liveness(self, violations: list[Violation]) -> None:
        """The minimum waiting task can always make progress.

        If work remains but nothing was active for a whole check interval
        with no event, memory completion, or function-unit completion
        scheduled, the guarantee is broken — report it now instead of
        waiting out the deadlock window.
        """
        sim = self.sim
        if not sim._work_remaining():
            return
        idle = sim.cycle - sim._last_progress_cycle
        # The otherwise broadcast only fires every
        # minimum_broadcast_interval cycles, so short gaps with nothing
        # else pending are legitimate even at a tiny check interval.
        floor = 2 * sim.config.minimum_broadcast_interval + 8
        if idle < max(self.interval, floor):
            return
        if sim._event_heap or not sim.memory.quiescent(sim.cycle):
            return
        for pipeline in sim.pipelines:
            for stage in pipeline.stages:
                if isinstance(stage, CallStage):
                    for _token, done_at, _req in stage.in_flight:
                        if done_at > sim.cycle:
                            return  # a function unit will complete later
        stuck = []
        for pipeline in sim.pipelines:
            stuck.extend(pipeline.stuck_report())
        violations.append(Violation(
            "liveness", "accelerator",
            f"no progress for {idle} cycles with work remaining; "
            + "; ".join(stuck[:4]),
        ))

    def _check_drained(self, violations: list[Violation]) -> None:
        """End-of-run conservation: everything handed out came back."""
        sim = self.sim
        for queue in sim.queues.values():
            if len(queue):
                violations.append(Violation(
                    "drain", f"queue {queue.task_set!r}",
                    f"{len(queue)} entries left after drain",
                ))
            if queue.pushes != queue.pops:
                violations.append(Violation(
                    "drain", f"queue {queue.task_set!r}",
                    f"pushes {queue.pushes} != pops {queue.pops}",
                ))
        for name, engine in sim.engines.items():
            if engine.occupancy:
                violations.append(Violation(
                    "drain", f"engine {name!r}",
                    f"{engine.occupancy} lane(s) still allocated",
                ))
        if sim.tracker.count:
            violations.append(Violation(
                "drain", "LiveIndexTracker",
                f"{sim.tracker.count} live handle(s) leaked",
            ))
        if sim.memory.in_flight:
            violations.append(Violation(
                "drain", "MemorySystem",
                f"{sim.memory.in_flight} request(s) never retired",
            ))
        credits = sim.admission_credits
        if credits is not None:
            lanes = sim.config.rule_lanes
            for task_set, value in credits.items():
                if value != lanes:
                    violations.append(Violation(
                        "drain", f"queue {task_set!r}",
                        f"admission credits drained at {value}, "
                        f"expected {lanes}",
                    ))
