"""Cycle-by-cycle schedule tracing.

An optional tracer records which stages were active each cycle, producing
the schedule diagrams of Figures 1(c) and 2(b) from actual simulations: a
text timeline with one row per pipeline stage and one column per cycle.
Used by ``examples/schedule_comparison.py`` and by tests that assert
overlap (dataflow) versus phase separation (barriers).
"""

from __future__ import annotations

from collections import defaultdict


class ScheduleTracer:
    """Records (cycle, stage) activity pairs up to a cycle limit."""

    def __init__(self, max_cycles: int = 2000) -> None:
        self.max_cycles = max_cycles
        self.activity: dict[str, set[int]] = defaultdict(set)
        self.last_cycle = 0

    def record(self, cycle: int, stage_name: str) -> None:
        if cycle >= self.max_cycles:
            return
        self.activity[stage_name].add(cycle)
        self.last_cycle = max(self.last_cycle, cycle)

    @classmethod
    def from_events(cls, events, max_cycles: int | None = None
                    ) -> "ScheduleTracer":
        """Build a tracer from a structured event stream.

        Consumes :class:`~repro.obs.events.TraceEvent` records (any
        iterable), keeping only stage-fire events — the schedule diagram
        needs exactly the activity pairs ``record`` would have seen.
        """
        from repro.obs.events import TraceEventKind

        tracer = cls() if max_cycles is None else cls(max_cycles=max_cycles)
        for event in events:
            if event.kind is TraceEventKind.STAGE_FIRE:
                tracer.record(event.cycle, event.name)
        return tracer

    # -- analysis ------------------------------------------------------------

    def active_window(self, stage_name: str) -> tuple[int, int] | None:
        """First and last active cycle of a stage (None if never active)."""
        cycles = self.activity.get(stage_name)
        if not cycles:
            return None
        return min(cycles), max(cycles)

    def overlap_cycles(self, stage_a: str, stage_b: str) -> int:
        """Cycles in which the two stages' active windows overlap."""
        a = self.active_window(stage_a)
        b = self.active_window(stage_b)
        if a is None or b is None:
            return 0
        lo = max(a[0], b[0])
        hi = min(a[1], b[1])
        return max(0, hi - lo + 1)

    def concurrency(self, cycle: int) -> int:
        """Number of stages active in one cycle."""
        return sum(1 for cycles in self.activity.values() if cycle in cycles)

    def peak_concurrency(self) -> int:
        return max(
            (self.concurrency(c) for c in range(self.last_cycle + 1)),
            default=0,
        )

    # -- rendering -------------------------------------------------------------

    def timeline(self, width: int = 72, stages: list[str] | None = None
                 ) -> str:
        """ASCII schedule diagram: rows = stages, columns = time buckets."""
        names = stages or sorted(self.activity)
        # Emptiness must be judged by recorded activity, not last_cycle:
        # a run whose only activity lands on cycle 0 still has a schedule.
        if not names or not any(self.activity.get(n) for n in names):
            return "(no activity recorded)"
        span = self.last_cycle + 1
        bucket = max(1, -(-span // width))
        label_width = max(len(n) for n in names)
        lines = [
            f"{'cycle':>{label_width}}  0 .. {self.last_cycle} "
            f"({bucket} cycles per column)"
        ]
        for name in names:
            cycles = self.activity.get(name, set())
            row = []
            for start in range(0, span, bucket):
                window = range(start, min(start + bucket, span))
                row.append("#" if any(c in cycles for c in window) else ".")
            lines.append(f"{name:>{label_width}}  {''.join(row)}")
        return "\n".join(lines)
