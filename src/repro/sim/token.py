"""Task tokens flowing through simulated pipelines."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.core.indexing import TaskIndex

# Process-global fallback counter.  The simulator allocates uids from its
# own per-instance counter (see ``AcceleratorSim.next_token_uid``) so that
# token identities in ledgers, traces and goldens are reproducible no
# matter how many simulations ran earlier in the process; this global
# remains as a compatibility shim for tokens constructed outside a
# simulator (tests, ad-hoc tooling) that only need uniqueness.
_token_ids = itertools.count()


@dataclass(slots=True)
class SimToken:
    """One task token.

    ``live_handle`` ties the token to its live-index registration (the
    global minimum over live indices drives otherwise triggering);
    ``lanes`` holds rule-engine lanes allocated by this token, consumed in
    FIFO order by rendezvous stages.
    """

    env: dict[str, Any]
    index: TaskIndex
    task_set: str
    uid: int = field(default_factory=lambda: next(_token_ids))
    task_uid: int = 0
    live_handle: int = -1
    lanes: list = field(default_factory=list)

    def fork(
        self, updates: dict[str, Any], uid: int | None = None
    ) -> "SimToken":
        """A sibling token (Expand): shares task identity and live handle.

        ``uid`` lets the simulator assign the child from its per-instance
        counter; omitted, the global shim counter is used.
        """
        env = dict(self.env)
        env.update(updates)
        if uid is None:
            uid = next(_token_ids)
        return SimToken(
            env=env,
            index=self.index,
            task_set=self.task_set,
            uid=uid,
            task_uid=self.task_uid,
            live_handle=self.live_handle,
        )
