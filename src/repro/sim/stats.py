"""Simulation statistics, including the paper's pipeline utilization rate.

"The pipeline utilization rate is calculated as the average number of
active (neither stall nor idle) primitive operations throughout the
execution over total number of primitive operations for all pipelines
instantiated on FPGA." (Section 6.3)

The core event counters live in the metrics registry
(:class:`~repro.obs.metrics.MetricsRegistry`): components increment
registered :class:`~repro.obs.metrics.Counter` instruments bound once at
construction (:class:`SimCounters`), and :class:`SimStats` is re-derived
from the registry at drain (:meth:`SimStats.sync_from`) so every existing
consumer keeps reading the same dataclass fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.obs.metrics import Counter, MetricsRegistry

# SimStats fields mirrored by `sim.<name>` counters in the registry.
REGISTRY_BACKED_FIELDS = (
    "commits",
    "squashes",
    "guard_drops",
    "tasks_activated",
    "queue_full_stalls",
    "events_delivered",
    "active_stage_cycles",
)


@dataclass
class SimCounters:
    """The registry-backed counters the hot path increments directly."""

    commits: Counter
    squashes: Counter
    guard_drops: Counter
    tasks_activated: Counter
    queue_full_stalls: Counter
    events_delivered: Counter
    active_stage_cycles: Counter

    @classmethod
    def register(cls, registry: MetricsRegistry) -> "SimCounters":
        return cls(**{
            f.name: registry.counter(f"sim.{f.name}") for f in fields(cls)
        })


@dataclass
class SimStats:
    cycles: int = 0
    commits: int = 0
    squashes: int = 0
    guard_drops: int = 0
    tasks_activated: int = 0
    queue_full_stalls: int = 0
    events_delivered: int = 0
    total_stages: int = 0
    active_stage_cycles: int = 0   # sum over cycles of active stages
    per_stage_active: dict[str, int] = field(default_factory=dict)
    per_stage_stalls: dict[str, int] = field(default_factory=dict)
    # Robustness subsystem (fault injection / invariants / recovery).
    faults_injected: int = 0       # fault-plan events that fired
    events_dropped: int = 0        # rule-engine deliveries lost to faults
    events_duplicated: int = 0     # rule-engine deliveries repeated
    invariant_checks: int = 0      # sanitizer passes that ran
    checkpoints_taken: int = 0     # snapshots captured
    rollbacks: int = 0             # recoveries from a checkpoint

    @property
    def pipeline_utilization(self) -> float:
        """The paper's utilization metric."""
        if self.cycles == 0 or self.total_stages == 0:
            return 0.0
        return self.active_stage_cycles / (self.cycles * self.total_stages)

    @property
    def squash_fraction(self) -> float:
        done = self.commits + self.squashes
        return self.squashes / done if done else 0.0

    def seconds(self, clock_hz: float) -> float:
        return self.cycles / clock_hz

    def sync_from(self, registry: MetricsRegistry) -> "SimStats":
        """Re-derive the registry-backed fields from ``sim.*`` counters."""
        for name in REGISTRY_BACKED_FIELDS:
            setattr(self, name, registry.counter_value(f"sim.{name}"))
        return self

    def merge(self, other: "SimStats") -> "SimStats":
        """Aggregate two runs (e.g. multi-run fault campaigns).

        Event counters and cycles sum; the per-stage maps sum per key;
        ``total_stages`` takes the maximum, so utilization stays
        meaningful when the merged runs share one datapath shape.
        """
        merged = SimStats()
        for f in fields(SimStats):
            if f.name in ("per_stage_active", "per_stage_stalls"):
                continue
            a, b = getattr(self, f.name), getattr(other, f.name)
            setattr(
                merged, f.name,
                max(a, b) if f.name == "total_stages" else a + b,
            )
        for name in ("per_stage_active", "per_stage_stalls"):
            combined = dict(getattr(self, name))
            for stage, count in getattr(other, name).items():
                combined[stage] = combined.get(stage, 0) + count
            setattr(merged, name, combined)
        return merged


def stats_digest(stats: SimStats) -> dict:
    """Canonical JSON-ready dict of a :class:`SimStats`.

    Per-stage maps are key-sorted so two digests compare (and serialize)
    deterministically — the form the golden fixtures and the differential
    harness diff against.
    """
    digest = {}
    for f in fields(SimStats):
        value = getattr(stats, f.name)
        if isinstance(value, dict):
            value = {key: value[key] for key in sorted(value)}
        digest[f.name] = value
    return digest
