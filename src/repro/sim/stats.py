"""Simulation statistics, including the paper's pipeline utilization rate.

"The pipeline utilization rate is calculated as the average number of
active (neither stall nor idle) primitive operations throughout the
execution over total number of primitive operations for all pipelines
instantiated on FPGA." (Section 6.3)
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimStats:
    cycles: int = 0
    commits: int = 0
    squashes: int = 0
    guard_drops: int = 0
    tasks_activated: int = 0
    queue_full_stalls: int = 0
    events_delivered: int = 0
    total_stages: int = 0
    active_stage_cycles: int = 0   # sum over cycles of active stages
    per_stage_active: dict[str, int] = field(default_factory=dict)
    per_stage_stalls: dict[str, int] = field(default_factory=dict)
    # Robustness subsystem (fault injection / invariants / recovery).
    faults_injected: int = 0       # fault-plan events that fired
    events_dropped: int = 0        # rule-engine deliveries lost to faults
    events_duplicated: int = 0     # rule-engine deliveries repeated
    invariant_checks: int = 0      # sanitizer passes that ran
    checkpoints_taken: int = 0     # snapshots captured
    rollbacks: int = 0             # recoveries from a checkpoint

    @property
    def pipeline_utilization(self) -> float:
        """The paper's utilization metric."""
        if self.cycles == 0 or self.total_stages == 0:
            return 0.0
        return self.active_stage_cycles / (self.cycles * self.total_stages)

    @property
    def squash_fraction(self) -> float:
        done = self.commits + self.squashes
        return self.squashes / done if done else 0.0

    def seconds(self, clock_hz: float) -> float:
        return self.cycles / clock_hz
