"""Checkpoint and rollback recovery for the accelerator simulator.

A checkpoint is a deep clone of the whole simulation context taken at a
cycle boundary — functional memory state, queues, rule-engine lanes,
in-flight tokens, the event heap, the cache and channel model — with the
immutable build artifacts (spec, datapath, platform, config, kernel ops)
shared by reference.  Restoring produces a *fresh runnable simulator*
rolled back to the checkpoint cycle, while the checkpoint itself stays
pristine so the same snapshot can absorb repeated rollbacks.

Two object-graph subtleties make this more than ``copy.deepcopy(sim)``:

* Rule engines key their lane tables by ``id(instance)``; a deep copy
  re-identifies every instance, so the tables are re-keyed after copying.
* A host feed is a live generator (not copyable).  The host adapter logs
  every batch it pulls, and a restored run first *replays* the logged
  batches past its cursor before touching the shared generator — see
  :meth:`repro.sim.host.HostAdapter.enable_replay`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field


def _shared_roots(sim) -> list:
    """Objects shared (not copied) between a simulator and its clones.

    These are either immutable build artifacts, diagnostics that should
    keep observing the live run, or objects that cannot be deep-copied
    (the host-feed generator).
    """
    shared = [sim.spec, sim.platform, sim.config, sim.datapath]
    for extra in (sim.tracer, sim.faults, sim.checker, sim.checkpoints):
        if extra is not None:
            shared.append(extra)
    host = sim.host
    if host._batches is not None:
        shared.append(host._batches)
    if host._batch_log is not None:
        shared.append(host._batch_log)
    for pipeline in sim.pipelines:
        for stage in pipeline.stages:
            if stage.op is not None:
                shared.append(stage.op)
    for engine in sim.engines.values():
        shared.append(engine.rule_type)
    return shared


def _identity_memo(shared: list) -> dict:
    return {id(obj): obj for obj in shared}


def snapshot(sim):
    """A frozen deep clone of ``sim`` (not runnable until revived)."""
    return copy.deepcopy(sim, _identity_memo(_shared_roots(sim)))


def revive(clone):
    """A fresh runnable simulator restored from a checkpoint clone."""
    sim = copy.deepcopy(clone, _identity_memo(_shared_roots(clone)))
    for engine in sim.engines.values():
        # Lane tables are keyed by instance identity, which the copy
        # changed; tokens reference the copied instances, so re-key.
        engine.lanes = {
            id(lane.instance): lane for lane in engine.lanes.values()
        }
    if sim.checker is not None:
        # The checker is shared by the memo and still bound to the old
        # context; give the revived simulator its own.
        from repro.sim.invariants import InvariantChecker

        sim.checker = InvariantChecker(sim, interval=sim.checker.interval)
    return sim


@dataclass
class Checkpoint:
    """One snapshot: the capture cycle plus the frozen clone."""

    cycle: int
    clone: object = field(repr=False)


class CheckpointManager:
    """Periodic snapshots plus the rollback policy.

    Keeps at most ``keep`` checkpoints: always the earliest (cycle of the
    first capture, effectively the initial state) plus the most recent
    ones, so repeated failures can fall back progressively further and
    ultimately rerun from the start.
    """

    def __init__(self, sim, interval: int = 20_000, keep: int = 4) -> None:
        if interval < 1:
            interval = 1
        self.sim = sim
        self.interval = interval
        self.keep = max(2, keep)
        self.checkpoints: list[Checkpoint] = []
        self.captures = 0
        self.rollbacks = 0
        self._next_capture = 0
        sim.host.enable_replay()

    # -- capture --------------------------------------------------------------

    def maybe_capture(self) -> None:
        if self.sim.cycle >= self._next_capture:
            self.capture()

    def next_event_cycle(self, now: int) -> int:
        """Next scheduled capture — a fast-forward wake-up, so snapshots
        land on exactly the same cycles as a dense run."""
        return max(self._next_capture, now + 1)

    def capture(self) -> Checkpoint:
        checkpoint = Checkpoint(self.sim.cycle, snapshot(self.sim))
        self.checkpoints.append(checkpoint)
        if len(self.checkpoints) > self.keep:
            # Retain the earliest capture as the rollback of last resort.
            del self.checkpoints[1]
        self.captures += 1
        self._next_capture = self.sim.cycle + self.interval
        if self.sim.obs is not None:
            # Recorded *after* the snapshot, so a restored run re-emits
            # the marker when it re-captures — the trace always reflects
            # the executed timeline.
            self.sim.obs.checkpoint(self.sim.cycle, self.captures)
        return checkpoint

    # -- rollback -------------------------------------------------------------

    def rollback(self, drop_latest: bool = False):
        """Restore the most recent checkpoint (or, with ``drop_latest``,
        discard it first and fall back to the one before)."""
        if not self.checkpoints:
            raise RuntimeError("no checkpoint to roll back to")
        if drop_latest and len(self.checkpoints) > 1:
            self.checkpoints.pop()
        checkpoint = self.checkpoints[-1]
        sim = revive(checkpoint.clone)
        sim.checkpoints = self
        self.sim = sim
        self.rollbacks += 1
        self._next_capture = checkpoint.cycle + self.interval
        if sim.faults is not None:
            # Force the plan's cached view to recompute at the rolled-back
            # cycle (the clock just moved backwards).
            sim.faults.advance(max(0, checkpoint.cycle))
        if sim.obs is not None:
            # The revived observability bundle was restored along with the
            # simulator (it is deliberately NOT a shared root), so cycles
            # past the checkpoint are already forgotten — replay cannot
            # double-count.  Stamp the rollback on the restored timeline.
            sim.obs.rollback(checkpoint.cycle)
        return sim
