"""Task pipelines: stage chains instantiated from a StageProgram."""

from __future__ import annotations

from repro.errors import SimulationError
from repro.obs.events import StallReason
from repro.sim.stages import (
    RendezvousStage,
    Stage,
    SwitchStage,
    make_stage,
)
from repro.sim.token import SimToken
from repro.synthesis.datapath import StageProgram, StageSpec


class SourceStage(Stage):
    """Queue pop port: turns workset entries into pipeline tokens."""

    __slots__ = ("task_set",)

    def __init__(self, ctx, task_set: str, name: str) -> None:
        super().__init__(ctx, None, name)
        self.task_set = task_set

    def tick(self) -> None:
        queue = self.ctx.queues[self.task_set]
        if not self.can_send():
            if len(queue):
                self._stall(StallReason.BACKPRESSURE)
            return
        credits = self.ctx.admission_credits
        if credits is not None and credits[self.task_set] <= 0:
            if len(queue):
                # Admission credits are bounded by the rule-lane count.
                self._stall(StallReason.RULE)
            return
        popped = queue.pop()
        if popped is None:
            if len(queue):
                # Work is queued but every bank refused the pop (faults).
                self._stall(StallReason.QUEUE)
            return
        if credits is not None:
            credits[self.task_set] -= 1
        index, fields, live_handle = popped
        token = SimToken(
            env=dict(fields),
            index=index,
            task_set=self.task_set,
            uid=self.ctx.next_token_uid(),
            live_handle=live_handle,
        )
        token.task_uid = token.uid
        if self.ctx.ledger is not None:
            self.ctx.ledger.born(
                token.uid, self.ctx.cycle, live_handle, self.name
            )
        self.send(token)
        self.mark_active()

    def busy(self) -> bool:
        return False  # the queue itself tracks pending work


class PipelineInstance:
    """One replica of a task set's pipeline."""

    def __init__(self, ctx, program: StageProgram, replica: int) -> None:
        self.ctx = ctx
        self.task_set = program.task_set
        self.name = f"{program.task_set}[{replica}]"
        self.stages: list[Stage] = []
        source = SourceStage(ctx, program.task_set, f"{self.name}.source")
        self.stages.append(source)
        first = self._build_chain(program.stages, terminal_outcome="commit")
        if first is None:
            raise SimulationError(
                f"pipeline {self.name} has no stages after the source"
            )
        source.output = first.input

    def _build_chain(
        self, specs: list[StageSpec], terminal_outcome: str
    ) -> Stage | None:
        """Build a chain of stages; returns the head stage (or None)."""
        head: Stage | None = None
        previous: Stage | None = None
        for position, spec in enumerate(specs):
            stage = make_stage(
                self.ctx, spec.op, f"{self.name}.{position}.{spec.kind.value}"
            )
            if spec.epilogue:
                epilogue_head = self._build_chain(
                    spec.epilogue, terminal_outcome="end"
                )
                if isinstance(stage, (SwitchStage, RendezvousStage)):
                    stage.epilogue_entry = epilogue_head.input
                else:
                    raise SimulationError(
                        f"{stage.name}: epilogue on a non-steering stage"
                    )
            self.stages.append(stage)
            if previous is not None:
                previous.output = stage.input
            else:
                head = stage
            previous = stage
        if previous is not None:
            previous.output = None
            previous.on_retire = terminal_outcome
        return head

    def tick(self) -> None:
        for stage in self.stages:
            stage.tick()

    def commit_fifos(self) -> None:
        for stage in self.stages:
            stage.input.commit()

    def busy(self) -> bool:
        return any(stage.busy() for stage in self.stages)

    def stage_count(self) -> int:
        return len(self.stages)

    def stuck_report(self) -> list[str]:
        """Diagnostics for deadlock errors."""
        report = []
        for stage in self.stages:
            tokens = stage.drain_tokens()
            extra = getattr(stage, "station", None) or \
                getattr(stage, "in_flight", None)
            if tokens or extra:
                report.append(
                    f"{stage.name}: queued={len(tokens)} "
                    f"internal={len(extra) if extra else 0}"
                )
        return report
