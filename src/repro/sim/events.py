"""Priority-queue discrete-event engine for the cycle simulator.

The fast-forward core (:mod:`repro.sim.fastpath`) already skips idle
spans, but it *discovers* wake-ups by scanning: every probe walks all
outstanding memory requests and every function-unit's in-flight list, so
probe cost grows with machine occupancy — exactly when the machine is
memory-bound and probes are most frequent.  This module inverts that:
components *register* their wake-ups in a priority queue at the moment
they schedule future work, and a probe is a heap peek.

Two pieces:

* :class:`WakeQueue` — a heapq of ``(cycle, seq, key)`` entries with a
  monotonically increasing ``seq`` as a stable FIFO tie-break, so
  same-cycle wake-ups are always observed in registration order and the
  engine is deterministic.  Keyed entries support O(1) ``cancel`` /
  re-``arm`` via lazy deletion (a dead entry is discarded when it
  reaches the heap top, never eagerly).
* :class:`EventScheduler` — a :class:`FastForwardScheduler` whose
  ``next_wakeup`` reads the queue instead of scanning components, and
  whose ``jump_target`` drops the minimum-jump hysteresis: with O(1)
  probes, even a one-cycle idle gap is worth skipping.

Wake-up contract (who arms what):

* The memory system arms ``("mem", req_id)`` at every tracked
  transfer's completion cycle (pipeline loads, Expand/Call operand
  streams, host batch DMA) and cancels it on retire.
* :class:`~repro.sim.stages.CallStage` arms an anonymous wake-up at
  issue time for its latency timer — the one stage-private clock.
* Rule-engine deliveries need no separate arming: the simulator's
  ``_event_heap`` is already a ``(cycle, seq, event)`` priority queue,
  so the scheduler peeks its head in O(1).
* Fault-plan window boundaries, checkpoint captures, invariant-checker
  passes, and the minimum-broadcast boundary (only when a broadcast
  would actually fire an otherwise) remain O(1) probe-time reads — they
  are single scalars owned by their components, so a queue entry would
  add churn without removing a scan.

Cycle-exactness is inherited from the fast-forward core: every executed
cycle is still a full dense :meth:`step`, only provably-stationary
cycles are skipped, and the inherited :meth:`skip_to` replays their
stall accounting in bulk (see docs/simulator.md).  The scheduler and
its queue live inside the simulator's checkpointed object graph, so
rollback restores the pending heap along with the machine and replayed
cycles re-arm their own wake-ups without double-counting.
"""

from __future__ import annotations

import heapq

from repro.sim.fastpath import NEVER, FastForwardScheduler

__all__ = ["WakeQueue", "EventScheduler", "NEVER"]


class WakeQueue:
    """A deterministic wake-up heap with keyed cancel/re-arm.

    Entries are ``(cycle, seq, key)`` tuples ordered by cycle, then by
    registration (``seq``), so iteration order is a pure function of
    the arm() call sequence.  ``key=None`` entries are anonymous
    one-shots; keyed entries can be cancelled or re-armed, with stale
    heap entries discarded lazily when they surface.
    """

    __slots__ = ("_heap", "_seq", "_armed")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, object]] = []
        self._seq = 0
        # key -> seq of its only live entry; a heap entry whose seq no
        # longer matches was cancelled or superseded by a re-arm.
        self._armed: dict = {}

    def arm(self, cycle: int, key=None) -> None:
        """Register a wake-up at ``cycle``; re-arming a key moves it."""
        seq = self._seq
        self._seq += 1
        if key is not None:
            self._armed[key] = seq
        heapq.heappush(self._heap, (cycle, seq, key))

    def cancel(self, key) -> None:
        """Drop a keyed wake-up (no-op when absent — retire races are
        legal: the entry may already have fired or been re-armed)."""
        self._armed.pop(key, None)

    def _live(self, entry) -> bool:
        _cycle, seq, key = entry
        return key is None or self._armed.get(key) == seq

    def next_after(self, now: int) -> int:
        """Earliest live wake-up cycle strictly after ``now``.

        Entries at or before ``now`` are spent — the probe cycle that
        consumed them has already executed — and are popped along with
        dead (cancelled/superseded) entries.  Returns ``NEVER`` when
        nothing is pending.
        """
        heap = self._heap
        while heap:
            cycle, seq, key = heap[0]
            if key is not None and self._armed.get(key) != seq:
                heapq.heappop(heap)
                continue
            if cycle <= now:
                heapq.heappop(heap)
                if key is not None:
                    del self._armed[key]
                continue
            return cycle
        return NEVER

    # -- introspection (tests, checkpoint assertions) -------------------------

    def pop_due(self, now: int) -> list[tuple[int, object]]:
        """Pop and return all live wake-ups at or before ``now``, as
        ``(cycle, key)`` in delivery order (cycle, then registration)."""
        fired: list[tuple[int, object]] = []
        heap = self._heap
        while heap and heap[0][0] <= now:
            cycle, seq, key = heapq.heappop(heap)
            if key is not None:
                if self._armed.get(key) != seq:
                    continue
                del self._armed[key]
            fired.append((cycle, key))
        return fired

    def pending(self) -> list[tuple[int, int, object]]:
        """The live entries, sorted in delivery order (non-destructive)."""
        return sorted(e for e in self._heap if self._live(e))

    def __len__(self) -> int:
        return sum(1 for e in self._heap if self._live(e))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WakeQueue({self.pending()!r})"


class EventScheduler(FastForwardScheduler):
    """Fast-forward scheduling driven by registered wake-ups.

    Drop-in for :class:`FastForwardScheduler` (the run loop, stall
    crediting, checkpointing, and telemetry are inherited); only wake-up
    *discovery* changes.  Attaching the scheduler plants its queue on
    the simulator (``sim.wakes``) and the memory system
    (``memory.wakes``) so issue paths arm wake-ups from then on.
    """

    def __init__(self, sim) -> None:
        super().__init__(sim)
        self.queue = WakeQueue()
        sim.wakes = self.queue
        sim.memory.wakes = self.queue

    # -- wake-up aggregation ---------------------------------------------------

    def next_wakeup(self, now: int) -> int:
        """Earliest cycle > ``now`` at which any component could act.

        The wake queue answers for memory completions and function-unit
        timers; pending event deliveries are an O(1) peek at the event
        heap (itself a priority queue); the remaining scalar clocks are
        read directly.
        """
        sim = self.sim
        wake = self.queue.next_after(now)
        heap = sim._event_heap
        if heap and heap[0][0] < wake:
            wake = heap[0][0]
        when = self._next_broadcast_cycle(now)
        if when < wake:
            wake = when
        if sim.faults is not None:
            when = sim.faults.next_event_cycle(now)
            if when < wake:
                wake = when
        if sim.checkpoints is not None:
            when = sim.checkpoints.next_event_cycle(now)
            if when < wake:
                wake = when
        if sim.checker is not None:
            when = sim.checker.next_check_cycle(now)
            if when < wake:
                wake = when
        return wake

    # -- the jump --------------------------------------------------------------

    def jump_target(self) -> int:
        """Like the base scheduler's, minus the minimum-jump hysteresis.

        The scan-based probe costs enough that sub-``ff_min_jump`` skips
        lose money; a heap peek does not, so every quiescent gap — even
        a single cycle — is jumped.  The clamp is identical, so
        max_cycles and the deadlock window trip at exactly the dense
        run's cycle.
        """
        sim = self.sim
        wake = self.next_wakeup(sim.cycle - 1)
        cap = min(
            sim.config.max_cycles,
            sim._last_progress_cycle + sim.config.deadlock_window + 1,
        )
        target = min(max(wake, sim.cycle), cap)
        if target <= sim.cycle:
            return sim.cycle
        if self.log is not None:
            self.log.append((sim.cycle, target, wake))
        return target
