"""Hardware FIFOs with registered (next-cycle-visible) pushes.

Pushes made during cycle t become poppable at cycle t+1, which models the
one-cycle channel register between pipeline stages and — more importantly —
makes the simulation independent of the order components tick in.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, TypeVar

from repro.errors import SimulationError

T = TypeVar("T")


class Fifo(Generic[T]):
    """Bounded FIFO with staged pushes."""

    __slots__ = ("capacity", "name", "_items", "_staged")

    def __init__(self, capacity: int = 2, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError("fifo capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._items: deque[T] = deque()
        self._staged: list[T] = []

    def __len__(self) -> int:
        return len(self._items) + len(self._staged)

    @property
    def visible(self) -> int:
        """Entries poppable this cycle."""
        return len(self._items)

    def can_push(self) -> bool:
        return len(self) < self.capacity

    def push(self, item: T) -> None:
        if not self.can_push():
            raise SimulationError(f"push into full fifo {self.name!r}")
        self._staged.append(item)

    def peek(self) -> T:
        return self._items[0]

    def pop(self) -> T:
        return self._items.popleft()

    def commit(self) -> None:
        """End of cycle: staged pushes become visible."""
        if self._staged:
            self._items.extend(self._staged)
            self._staged.clear()

    def drain(self) -> list[T]:
        """All entries (visible and staged) — for diagnostics only."""
        return list(self._items) + list(self._staged)
