"""The generic memory subsystem: 64 KB FPGA cache + QPI channel.

Models the problem-independent memory system of Section 5.2 with the
latencies of Choi et al. [14]: a direct read hit costs 14 FPGA cycles
(70 ns), a miss adds the QPI round trip (~200 ns) plus queueing behind the
~7 GB/s shared-memory channel.  Bulk transfers (CSR row streams, host task
batches, block operands — the Expand/Call/host traffic) go through the same
channel, so everything competes for the bandwidth Figure 10 sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.eval.platforms import HarpPlatform
from repro.errors import SimulationError
from repro.sim.fastpath import NEVER


@dataclass
class MemoryStats:
    loads: int = 0
    load_hits: int = 0
    stores: int = 0
    streams: int = 0
    prefetches: int = 0
    bytes_transferred: int = 0
    channel_busy_cycles: int = 0


class QpiChannel:
    """A serialized transfer channel with latency and finite bandwidth.

    ``faults`` (a :class:`~repro.sim.faults.FaultPlan`, or None) lets an
    injected latency spike or bandwidth brownout perturb transfers; the
    hook costs one identity test when disabled.
    """

    def __init__(self, platform: HarpPlatform, latency_cycles: int,
                 faults=None) -> None:
        self.bytes_per_cycle = platform.qpi_bytes_per_cycle
        self.latency = latency_cycles
        self.faults = faults
        self._free_at = 0
        self.busy_cycles = 0

    def transfer(self, now: int, nbytes: int) -> int:
        """Schedule a transfer; returns its completion cycle."""
        if nbytes <= 0:
            return now
        bytes_per_cycle = self.bytes_per_cycle
        latency = self.latency
        if self.faults is not None:
            bytes_per_cycle = max(
                1e-9, bytes_per_cycle * self.faults.bandwidth_factor
            )
            latency += self.faults.latency_extra
        start = max(now, self._free_at)
        # Ceiling division: a transfer occupies the channel for every
        # cycle its bytes need — rounding down would under-charge small
        # transfers and let modelled bandwidth exceed the platform's.
        duration = max(1, math.ceil(nbytes / bytes_per_cycle))
        self._free_at = start + duration
        self.busy_cycles += duration
        return start + duration + latency

    def idle_at(self, now: int) -> bool:
        return self._free_at <= now


class Cache:
    """Set-associative cache with LRU replacement (tags only).

    Tracks hit/miss per line address; data correctness is handled by the
    functional MemorySpace, so the cache models timing alone.
    """

    def __init__(self, capacity_bytes: int, line_bytes: int, ways: int) -> None:
        if capacity_bytes % (line_bytes * ways) != 0:
            raise SimulationError("cache geometry does not divide evenly")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = capacity_bytes // (line_bytes * ways)
        # Per set: list of tags in LRU order (front = LRU).
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]

    def _locate(self, addr: int) -> tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.num_sets, line

    def access(self, addr: int, allocate: bool = True) -> bool:
        """Touch ``addr``; returns True on hit."""
        set_idx, tag = self._locate(addr)
        ways = self._sets[set_idx]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return True
        if allocate:
            if len(ways) >= self.ways:
                ways.pop(0)
            ways.append(tag)
        return False


@dataclass(slots=True)
class _Request:
    done_at: int
    nbytes: int


class MemorySystem:
    """Front end the load/store units and DMA engines talk to.

    ``prefetch`` enables a simple next-line prefetcher on load misses — a
    problem-independent stand-in for the aggressive data movement the paper
    leaves to future work ("Handcrafted accelerators handle data transfer
    aggressively by prefetching or preprocessing in problem-specific
    ways").  Prefetches consume channel bandwidth like any other transfer.
    """

    def __init__(self, platform: HarpPlatform, prefetch: bool = False,
                 faults=None, obs=None, ledger=None) -> None:
        self.platform = platform
        self.prefetch = prefetch
        self.obs = obs  # Observability hooks (None = zero cost)
        self.ledger = ledger  # TokenLedger causal edges (None = off)
        self.cache = Cache(
            platform.cache_bytes, platform.cache_line_bytes,
            platform.cache_ways,
        )
        self.channel = QpiChannel(platform, platform.miss_extra_cycles,
                                  faults=faults)
        self.stats = MemoryStats()
        self._outstanding: dict[int, _Request] = {}
        self._next_id = 0
        # Event-engine wake queue (a sim.events.WakeQueue); when attached,
        # every tracked transfer arms its completion cycle at issue time
        # so the scheduler never has to scan ``_outstanding``.
        self.wakes = None

    # -- issue ---------------------------------------------------------------

    def _track(self, done_at: int, nbytes: int) -> int:
        req_id = self._next_id
        self._next_id += 1
        self._outstanding[req_id] = _Request(done_at, nbytes)
        if self.wakes is not None:
            self.wakes.arm(done_at, ("mem", req_id))
        return req_id

    def issue_load(self, now: int, addr: int, nbytes: int = 8) -> int:
        """A pipeline load; returns a request id."""
        self.stats.loads += 1
        line = self.platform.cache_line_bytes
        hit = self.cache.access(addr)
        if hit:
            self.stats.load_hits += 1
            done = now + self.platform.cache_hit_cycles
        else:
            done = self.channel.transfer(now, line) + \
                self.platform.cache_hit_cycles
            self.stats.bytes_transferred += line
            if self.prefetch:
                next_line = (addr // line + 1) * line
                if not self.cache.access(next_line, allocate=False):
                    self.cache.access(next_line)  # install
                    self.channel.transfer(now, line)
                    self.stats.bytes_transferred += line
                    self.stats.prefetches += 1
        if self.obs is not None:
            self.obs.mem_issue(now, "load", nbytes)
            self.obs.mem_load(now, addr, hit, done - now)
        req = self._track(done, nbytes)
        if self.ledger is not None:
            self.ledger.mem_issue(
                req, now, done, "mem_hit" if hit else "mem_miss"
            )
        return req

    def issue_store(self, now: int, addr: int, nbytes: int = 8) -> None:
        """A commit-unit store (write-through, posted — no tracking)."""
        self.stats.stores += 1
        hit = self.cache.access(addr)
        if not hit:
            # The posted write still crosses the channel.
            self.channel.transfer(now, nbytes)
            self.stats.bytes_transferred += nbytes
        if self.obs is not None:
            self.obs.mem_issue(now, "store", nbytes)

    def issue_stream(self, now: int, nbytes: int) -> int:
        """A bulk sequential transfer (CSR row, host batch, block operand)."""
        self.stats.streams += 1
        if self.obs is not None:
            self.obs.mem_issue(now, "stream", nbytes)
        if nbytes <= 0:
            done = now + 1
        else:
            done = self.channel.transfer(now, nbytes)
            self.stats.bytes_transferred += nbytes
        req = self._track(done, nbytes)
        if self.ledger is not None:
            self.ledger.mem_issue(req, now, done, "mem_stream")
        return req

    # -- completion ------------------------------------------------------------

    def ready(self, now: int, req_id: int) -> bool:
        request = self._outstanding.get(req_id)
        if request is None:
            raise SimulationError(f"unknown memory request {req_id}")
        return request.done_at <= now

    def done_at(self, req_id: int) -> int:
        request = self._outstanding.get(req_id)
        if request is None:
            raise SimulationError(f"unknown memory request {req_id}")
        return request.done_at

    def retire(self, req_id: int) -> None:
        if self._outstanding.pop(req_id, None) is None:
            raise SimulationError(
                f"retire of unknown memory request {req_id}"
            )
        if self.wakes is not None:
            self.wakes.cancel(("mem", req_id))
        if self.obs is not None:
            self.obs.mem_complete()

    @property
    def in_flight(self) -> int:
        return len(self._outstanding)

    def pending(self, now: int) -> bool:
        """True while any outstanding request has not yet completed."""
        return any(r.done_at > now for r in self._outstanding.values())

    def quiescent(self, now: int) -> bool:
        return all(r.done_at <= now for r in self._outstanding.values())

    # -- fast-forward interface -----------------------------------------------

    def next_event_cycle(self, now: int) -> int:
        """Earliest completion of an outstanding request after ``now``.

        This covers every tracked transfer in the machine — pipeline
        loads, Expand/Call operand streams, and host batch DMA — since
        they all go through :meth:`_track`.
        """
        wake = NEVER
        for request in self._outstanding.values():
            if now < request.done_at < wake:
                wake = request.done_at
        return wake

    def latest_completion(self) -> int:
        """Latest completion over outstanding requests (-1 when none).

        The dense loop refreshes its progress watermark on every cycle
        with a completion still in the future; a skip replays that by
        advancing the watermark to this value minus one.
        """
        latest = -1
        for request in self._outstanding.values():
            if request.done_at > latest:
                latest = request.done_at
        return latest
