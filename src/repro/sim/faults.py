"""Seeded, deterministic fault injection for the accelerator simulator.

The paper's accelerator ran on real HARP silicon, where transient faults
are physical realities: QPI latency spikes under coherence-traffic
contention, bandwidth brownouts when the host competes for the channel,
rule-engine lanes knocked out by SEUs, and BRAM bank stalls.  A
:class:`FaultPlan` models those perturbations as a seeded schedule of
:class:`FaultEvent` windows so a fault campaign is exactly reproducible:
the same seed always yields the same plan, and the same plan applied to
the same application always perturbs the same cycles.

Components consult the plan through zero-cost-when-disabled hooks — each
keeps ``faults = None`` by default and tests that one reference on the
hot path.  The plan caches its per-cycle view (extra latency, bandwidth
factor, failed lanes, stalled banks) and only recomputes when the cycle
crosses a fault-window boundary.

Recovery semantics: faults are *transient*.  Once a fault has fired, the
resilient driver (:func:`repro.sim.accelerator.run_resilient`) calls
:meth:`FaultPlan.disarm_fired` after rolling back to a checkpoint, so a
recovered fault does not re-fire during the replayed cycles — the
simulated equivalent of a glitch that has passed.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field


class FaultKind(str, enum.Enum):
    """The fault taxonomy (see docs/simulator.md)."""

    QPI_LATENCY = "qpi-latency"       # extra cycles on every channel transfer
    QPI_BROWNOUT = "qpi-brownout"     # channel bandwidth scaled down
    EVENT_DROP = "event-drop"         # an engine misses broadcast events
    EVENT_DUPLICATE = "event-dup"     # an engine sees events twice
    LANE_FAIL = "lane-fail"           # rule-engine lanes become unavailable
    BANK_STALL = "bank-stall"         # one task-queue bank refuses pops


@dataclass
class FaultEvent:
    """One scheduled perturbation, active over ``[start, start+duration)``.

    ``magnitude`` is kind-specific: extra latency cycles (QPI_LATENCY), a
    bandwidth multiplier in (0, 1] (QPI_BROWNOUT), a delivery count
    (EVENT_DROP / EVENT_DUPLICATE), or a failed-lane count (LANE_FAIL).
    ``target`` names the rule engine or task set ("" matches any);
    ``bank`` selects the stalled bank for BANK_STALL.
    """

    kind: FaultKind
    start: int
    duration: int = 1
    magnitude: float = 1.0
    target: str = ""
    bank: int = -1
    # Bookkeeping (mutated at runtime, never by the generator).
    fired_at: int = -1        # first cycle this fault perturbed the run
    consumed: bool = False    # disarmed after a recovery rollback
    remaining: int = field(default=-1, repr=False)  # drop/dup credits left

    @property
    def end(self) -> int:
        return self.start + self.duration

    def describe(self) -> str:
        where = f" @{self.target}" if self.target else ""
        if self.bank >= 0:
            where += f"[bank {self.bank}]"
        return (
            f"{self.kind.value}{where} cycles {self.start}..{self.end} "
            f"x{self.magnitude:g}"
        )


class FaultPlan:
    """A deterministic schedule of fault events plus its runtime view.

    The simulator calls :meth:`advance` once per cycle; components then
    read the cached per-cycle attributes (``latency_extra``,
    ``bandwidth_factor``) or call the targeted queries
    (:meth:`lanes_failed`, :meth:`bank_stalled`, :meth:`event_action`).
    ``advance`` also tolerates the clock moving *backwards* — a rollback
    to a checkpoint simply forces the per-cycle view to be recomputed.
    """

    def __init__(self, events: list[FaultEvent], seed: int | None = None
                 ) -> None:
        self.events = sorted(
            events, key=lambda e: (e.start, e.kind.value, e.target, e.bank)
        )
        for event in self.events:
            if event.remaining < 0:
                event.remaining = (
                    int(event.magnitude)
                    if event.kind in (FaultKind.EVENT_DROP,
                                      FaultKind.EVENT_DUPLICATE)
                    else 0
                )
        self.seed = seed
        self.log: list[str] = []
        self.cycle = -1
        # Cached per-cycle view.
        self.latency_extra = 0
        self.bandwidth_factor = 1.0
        self._lanes_failed: dict[str, int] = {}
        self._stalled: set[tuple[str, int]] = set()
        self._discrete: list[FaultEvent] = []
        self._next_boundary = 0

    # -- runtime clock --------------------------------------------------------

    def advance(self, cycle: int) -> None:
        """Bring the cached per-cycle view up to ``cycle`` (cheap no-op
        between window boundaries)."""
        if cycle < self.cycle or cycle >= self._next_boundary:
            self._recompute(cycle)
        self.cycle = cycle

    def _recompute(self, cycle: int) -> None:
        self.latency_extra = 0
        self.bandwidth_factor = 1.0
        self._lanes_failed = {}
        self._stalled = set()
        self._discrete = []
        boundary = None
        for event in self.events:
            if event.consumed:
                continue
            if event.start > cycle:
                if boundary is None or event.start < boundary:
                    boundary = event.start
                continue
            if event.end <= cycle:
                continue
            if boundary is None or event.end < boundary:
                boundary = event.end
            kind = event.kind
            if kind in (FaultKind.EVENT_DROP, FaultKind.EVENT_DUPLICATE):
                if event.remaining > 0:
                    self._discrete.append(event)
                continue
            self._fire(event, cycle)
            if kind is FaultKind.QPI_LATENCY:
                self.latency_extra += int(event.magnitude)
            elif kind is FaultKind.QPI_BROWNOUT:
                self.bandwidth_factor *= max(0.01, min(1.0, event.magnitude))
            elif kind is FaultKind.LANE_FAIL:
                previous = self._lanes_failed.get(event.target, 0)
                self._lanes_failed[event.target] = (
                    previous + int(event.magnitude)
                )
            elif kind is FaultKind.BANK_STALL:
                self._stalled.add((event.target, event.bank))
        self._next_boundary = boundary if boundary is not None else 1 << 62

    def _fire(self, event: FaultEvent, cycle: int) -> None:
        if event.fired_at < 0:
            event.fired_at = cycle
            self.log.append(f"cycle {cycle}: {event.describe()}")

    def next_event_cycle(self, now: int) -> int:
        """Next fault-window boundary — a fast-forward wake-up, so window
        activations (and their ``fired_at`` stamps) match a dense run."""
        return self._next_boundary if self._next_boundary > now else now + 1

    # -- component queries ----------------------------------------------------

    def lanes_failed(self, engine: str) -> int:
        """Unavailable lanes for ``engine`` this cycle."""
        if not self._lanes_failed:
            return 0
        return (
            self._lanes_failed.get(engine, 0) + self._lanes_failed.get("", 0)
        )

    def bank_stalled(self, task_set: str, bank: int) -> bool:
        """True when ``bank`` of ``task_set``'s queue refuses pops."""
        if not self._stalled:
            return False
        return (
            (task_set, bank) in self._stalled or ("", bank) in self._stalled
        )

    def event_action(self, engine: str) -> str | None:
        """Consume one drop/duplicate credit aimed at ``engine``, if any.

        Returns "drop", "dup", or None; called once per event delivery.
        """
        for event in self._discrete:
            if event.target and event.target != engine:
                continue
            if event.remaining <= 0 or event.consumed:
                continue
            event.remaining -= 1
            self._fire(event, self.cycle)
            if event.remaining <= 0:
                self._next_boundary = self.cycle  # force refresh next cycle
            return (
                "drop" if event.kind is FaultKind.EVENT_DROP else "dup"
            )
        return None

    # -- recovery -------------------------------------------------------------

    def disarm_fired(self) -> None:
        """Mark every fault that has fired as consumed (transient passed).

        Called by the resilient driver after a rollback so the replayed
        cycles do not re-experience the fault that was just recovered.
        """
        for event in self.events:
            if event.fired_at >= 0:
                event.consumed = True
        self.cycle = -1
        self._next_boundary = 0

    @property
    def fired_count(self) -> int:
        return sum(1 for event in self.events if event.fired_at >= 0)

    @property
    def pending_count(self) -> int:
        return sum(
            1 for event in self.events
            if event.fired_at < 0 and not event.consumed
        )

    def describe(self) -> str:
        lines = [f"fault plan (seed={self.seed}): {len(self.events)} events"]
        lines.extend(f"  {event.describe()}" for event in self.events)
        return "\n".join(lines)

    # -- generation -----------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        horizon: int,
        *,
        engines: tuple[str, ...] | list[str] = (),
        task_sets: tuple[str, ...] | list[str] = (),
        banks: int = 4,
        rule_lanes: int = 32,
        intensity: float = 1.0,
    ) -> "FaultPlan":
        """A seeded mixed-mode plan over ``horizon`` cycles.

        ``intensity`` scales the number of injected events; the mixture
        covers every :class:`FaultKind`.  Windows land in the first 80%
        of the horizon so late faults still have cycles left to bite.
        """
        rng = random.Random(seed)
        horizon = max(horizon, 100)
        events: list[FaultEvent] = []

        def window(lo_frac: float = 0.02, hi_frac: float = 0.8) -> int:
            return rng.randint(
                max(1, int(horizon * lo_frac)), max(2, int(horizon * hi_frac))
            )

        def count(base: int) -> int:
            return max(0, round(base * intensity))

        for _ in range(count(2)):
            events.append(FaultEvent(
                FaultKind.QPI_LATENCY, window(),
                duration=rng.randint(horizon // 50 + 1, horizon // 8 + 2),
                magnitude=rng.randint(20, 200),
            ))
        for _ in range(count(2)):
            events.append(FaultEvent(
                FaultKind.QPI_BROWNOUT, window(),
                duration=rng.randint(horizon // 40 + 1, horizon // 6 + 2),
                magnitude=rng.uniform(0.2, 0.75),
            ))
        for _ in range(count(2)):
            events.append(FaultEvent(
                FaultKind.EVENT_DROP, window(),
                duration=max(2, horizon // 10),
                magnitude=rng.randint(1, 3),
                target=rng.choice(list(engines)) if engines else "",
            ))
        for _ in range(count(1)):
            events.append(FaultEvent(
                FaultKind.EVENT_DUPLICATE, window(),
                duration=max(2, horizon // 10),
                magnitude=rng.randint(1, 2),
                target=rng.choice(list(engines)) if engines else "",
            ))
        for _ in range(count(1)):
            events.append(FaultEvent(
                FaultKind.LANE_FAIL, window(),
                duration=rng.randint(horizon // 40 + 1, horizon // 8 + 2),
                magnitude=max(1, rng.randint(rule_lanes // 4,
                                             (3 * rule_lanes) // 4)),
                target=rng.choice(list(engines)) if engines else "",
            ))
        for _ in range(count(1)):
            events.append(FaultEvent(
                FaultKind.BANK_STALL, window(),
                duration=rng.randint(horizon // 40 + 1, horizon // 8 + 2),
                target=rng.choice(list(task_sets)) if task_sets else "",
                bank=rng.randrange(max(1, banks)),
            ))
        return cls(events, seed=seed)
