"""Xeon timing models for the software counterparts (Figure 9).

The sequential model charges three additive components, the standard
first-order model for irregular codes:

* compute: instructions at the sustained IPC of -O3 scalar pointer-chasing
  code (dense flops are charged separately at the vector FMA rate);
* random-access memory: cache-missing touches at DRAM latency, de-rated by
  the memory-level parallelism an out-of-order core extracts;
* streaming: sequentially touched bytes at the DRAM bandwidth.

The parallel model (10 cores / 20 threads) divides the work by the cores at
a parallel efficiency typical of published aggressive runtimes, then adds
the per-task runtime overhead (queueing, conflict bookkeeping) and the
per-round synchronization cost, and finally floors the result at the
machine's memory-bandwidth roof — irregular applications rarely scale past
it, which is why the paper's 10-core baselines are only a handful of times
faster than one core.
"""

from __future__ import annotations

from repro.cpu.counters import WorkloadProfile
from repro.eval.platforms import XEON_E5_2680V2, XeonPlatform

# Dense-kernel flop rate per core: BOTS sparselu is plain -O3 C loops,
# which sustain roughly one DP flop per cycle (no hand vectorization).
_FLOPS_PER_CYCLE = 1.2


def _miss_fraction(working_set_bytes: int, llc_bytes: int) -> float:
    """Fraction of random touches missing the cache hierarchy."""
    if working_set_bytes <= llc_bytes:
        # Hot structures mostly resident; misses come from cold starts and
        # conflict evictions.
        return 0.08 + 0.12 * (working_set_bytes / llc_bytes)
    return min(0.85, 0.2 + 0.6 * (1.0 - llc_bytes / working_set_bytes))


def sequential_seconds(
    profile: WorkloadProfile, platform: XeonPlatform = XEON_E5_2680V2
) -> float:
    """One-core execution-time estimate."""
    compute = profile.instructions / (
        platform.sustained_ipc * platform.clock_hz
    )
    compute += profile.flops / (_FLOPS_PER_CYCLE * platform.clock_hz)
    misses = profile.random_accesses * _miss_fraction(
        profile.working_set_bytes, platform.llc_bytes
    )
    random_memory = misses * (platform.dram_latency_ns * 1e-9) / platform.mlp
    streaming = profile.sequential_bytes / (
        platform.dram_bandwidth_gbps * 1e9
    )
    return compute + random_memory + streaming


def parallel_seconds(
    profile: WorkloadProfile,
    platform: XeonPlatform = XEON_E5_2680V2,
    cores: int | None = None,
) -> float:
    """10-core / 20-thread aggressive-runtime execution-time estimate."""
    cores = cores or platform.cores
    base = sequential_seconds(profile, platform)
    scaled = base / (cores * platform.parallel_efficiency)
    overhead = (
        profile.tasks * platform.task_overhead_ns * 1e-9 / cores
        + profile.rounds * platform.sync_overhead_ns * 1e-9
    )
    # Bandwidth roof: all cores share one memory system; random misses
    # consume full lines.
    bytes_demanded = (
        profile.sequential_bytes
        + profile.random_accesses
        * _miss_fraction(profile.working_set_bytes, platform.llc_bytes) * 64
    )
    roof = bytes_demanded / (platform.dram_bandwidth_gbps * 1e9)
    return max(scaled + overhead, roof)


def speedup_over(baseline_seconds: float, accel_seconds: float) -> float:
    """Convenience: how many times faster the accelerator is."""
    if accel_seconds <= 0:
        raise ValueError("accelerator time must be positive")
    return baseline_seconds / accel_seconds
