"""Workload profiles: event counts the CPU timing models consume.

Each extractor *runs the reference algorithm* while counting the events a
GCC -O3 implementation would generate: instructions retired, random
(pointer-chasing) memory touches, sequentially streamed bytes, and the
number of global synchronization rounds a parallel aggressive runtime would
execute.  The counts are exact for the given input, so the timing model's
only free parameters are the per-event costs in ``eval/platforms.py``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.substrates.dsu import DisjointSet
from repro.substrates.graphs.algorithms import INF
from repro.substrates.graphs.csr import CSRGraph
from repro.substrates.mesh.delaunay import triangulate
from repro.substrates.mesh.refinement import (
    bad_triangles,
    cavity_of,
    is_bad,
    random_points,
    retriangulate_cavity,
    _center_in_bounds,
)
from repro.substrates.sparse.block import (
    BlockSparseMatrix,
    lu_block_tasks,
)


@dataclass
class WorkloadProfile:
    """Event counts for one benchmark run."""

    name: str
    tasks: int = 0
    instructions: float = 0.0
    random_accesses: int = 0
    sequential_bytes: int = 0
    rounds: int = 0                 # global sync rounds in a parallel run
    working_set_bytes: int = 0
    flops: float = 0.0              # dense arithmetic (vectorizable)
    notes: dict = field(default_factory=dict)


# Per-event instruction estimates for -O3 scalar code.
_INSTR_PER_EDGE_BFS = 13       # load level, compare, branch, queue push
_INSTR_PER_VERTEX_BFS = 22     # dequeue, row bounds, loop setup
_INSTR_PER_RELAX = 14
_INSTR_PER_FIND_HOP = 6
_INSTR_PER_INCIRCLE = 45       # determinant + comparisons


def bfs_profile(graph: CSRGraph, root: int) -> WorkloadProfile:
    """Counts for the sequential queue-based BFS of Figure 1(a)."""
    levels = np.full(graph.num_vertices, INF, dtype=np.int64)
    levels[root] = 0
    queue: deque[int] = deque([root])
    visited = 0
    edges_examined = 0
    rounds = 0
    while queue:
        v = queue.popleft()
        visited += 1
        next_level = levels[v] + 1
        for u in graph.neighbors(v):
            edges_examined += 1
            if levels[u] == INF:
                levels[u] = next_level
                queue.append(int(u))
                rounds = max(rounds, int(next_level))
    return WorkloadProfile(
        name="BFS",
        tasks=visited + edges_examined,
        instructions=(
            visited * _INSTR_PER_VERTEX_BFS
            + edges_examined * _INSTR_PER_EDGE_BFS
        ),
        random_accesses=edges_examined + visited,
        sequential_bytes=graph.adjacency_bytes(),
        rounds=rounds,
        working_set_bytes=graph.adjacency_bytes()
        + 8 * graph.num_vertices,
        notes={"edges_examined": edges_examined, "visited": visited},
    )


def sssp_profile(graph: CSRGraph, root: int) -> WorkloadProfile:
    """Counts for work-list Bellman-Ford (what SPEC-SSSP parallelizes)."""
    dist = np.full(graph.num_vertices, np.inf)
    dist[root] = 0.0
    worklist: deque[int] = deque([root])
    queued = np.zeros(graph.num_vertices, dtype=bool)
    queued[root] = True
    relaxations = 0
    pops = 0
    while worklist:
        v = worklist.popleft()
        pops += 1
        queued[v] = False
        base = dist[v]
        for u, w in zip(graph.neighbors(v), graph.neighbor_weights(v)):
            relaxations += 1
            candidate = base + w
            if candidate < dist[u]:
                dist[u] = candidate
                if not queued[u]:
                    worklist.append(int(u))
                    queued[u] = True
    return WorkloadProfile(
        name="SSSP",
        tasks=pops,
        instructions=relaxations * _INSTR_PER_RELAX + pops * 10,
        random_accesses=2 * relaxations,
        sequential_bytes=2 * graph.adjacency_bytes(),  # ids + weights
        rounds=max(1, pops // max(1, graph.num_vertices // 4)),
        working_set_bytes=2 * graph.adjacency_bytes()
        + 8 * graph.num_vertices,
        notes={"relaxations": relaxations, "pops": pops},
    )


def mst_profile(graph: CSRGraph) -> WorkloadProfile:
    """Counts for sort + Kruskal with union by rank (SPEC-MST's baseline)."""
    edges = graph.unique_undirected_edges()
    dsu = DisjointSet(graph.num_vertices)
    find_hops = 0
    unions = 0

    def count_find(x: int) -> int:
        nonlocal find_hops
        hops = 0
        root = x
        while dsu._parent[root] != root:
            root = dsu._parent[root]
            hops += 1
        find_hops += hops + 1
        return root

    for u, v, _w in edges:
        ru, rv = count_find(u), count_find(v)
        if ru != rv:
            dsu.union(u, v)
            unions += 1
    n_edges = len(edges)
    sort_instr = 11.0 * n_edges * max(1.0, np.log2(max(2, n_edges)))
    return WorkloadProfile(
        name="MST",
        tasks=n_edges,
        instructions=sort_instr + find_hops * _INSTR_PER_FIND_HOP
        + unions * 12,
        random_accesses=find_hops + 2 * unions,
        sequential_bytes=24 * n_edges,
        rounds=max(1, n_edges // 64),
        working_set_bytes=24 * n_edges + 16 * graph.num_vertices,
        notes={"unions": unions, "find_hops": find_hops},
    )


def dmr_profile(n_points: int, seed: int, min_angle: float = 25.0
                ) -> WorkloadProfile:
    """Counts for sequential Delaunay refinement."""
    mesh = triangulate(random_points(n_points, seed))
    worklist = bad_triangles(mesh, min_angle)
    initial_bad = len(worklist)
    refinements = 0
    cavity_triangles = 0
    incircle_tests = 0
    while worklist:
        tri = worklist.pop()
        if tri not in mesh or not is_bad(mesh, tri, min_angle):
            continue
        center, cavity = cavity_of(mesh, tri)
        incircle_tests += 3 * len(cavity) + 3
        if not _center_in_bounds(mesh, center):
            continue
        created = retriangulate_cavity(mesh, center, cavity)
        if created is None:
            continue
        refinements += 1
        cavity_triangles += len(cavity)
        worklist.extend(t for t in created if is_bad(mesh, t, min_angle))
    return WorkloadProfile(
        name="DMR",
        tasks=refinements,
        instructions=incircle_tests * _INSTR_PER_INCIRCLE
        + refinements * 420 + cavity_triangles * 150,
        random_accesses=6 * cavity_triangles + 12 * refinements,
        sequential_bytes=96 * cavity_triangles,
        rounds=max(1, refinements // 32),
        working_set_bytes=200 * len(mesh.triangles),
        notes={"initial_bad": initial_bad, "refinements": refinements,
               "avg_cavity": cavity_triangles / max(1, refinements)},
    )


def lu_profile(matrix: BlockSparseMatrix) -> WorkloadProfile:
    """Counts for the BOTS sparse LU block task list."""
    tasks = lu_block_tasks(matrix)
    b = matrix.block_size
    flops = 0.0
    block_touches = 0
    for task in tasks:
        if task.kind == "lu0":
            flops += 2.0 * b ** 3 / 3.0
            block_touches += 1
        elif task.kind in ("fwd", "bdiv"):
            flops += float(b ** 3)
            block_touches += 2
        else:
            flops += 2.0 * b ** 3
            block_touches += 3
    return WorkloadProfile(
        name="LU",
        tasks=len(tasks),
        instructions=len(tasks) * 80,  # loop bookkeeping; flops separate
        random_accesses=block_touches * 4,
        sequential_bytes=block_touches * b * b * 8,
        rounds=matrix.grid,
        working_set_bytes=matrix.total_bytes(),
        flops=flops,
        notes={"block_tasks": len(tasks)},
    )
