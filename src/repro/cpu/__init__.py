"""Software counterparts: Xeon E5-2680 v2 timing models (Section 6.3)."""

from repro.cpu.counters import WorkloadProfile
from repro.cpu.timing import parallel_seconds, sequential_seconds

__all__ = ["WorkloadProfile", "sequential_seconds", "parallel_seconds"]
