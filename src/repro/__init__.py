"""Reproduction of "Aggressive Pipelining of Irregular Applications on
Reconfigurable Hardware" (Li et al., ISCA 2017).

Public API tour:

* :mod:`repro.core` — the abstraction: well-ordered task sets, ECA rules,
  kernels, and the software runtimes (sequential / aggressive / threaded).
* :mod:`repro.apps` — the paper's six benchmarks plus two extensions;
  ``build_app(name, ...)`` is the front door.
* :mod:`repro.sim` — the cycle-level accelerator simulator;
  ``simulate_app(spec)`` runs and verifies a specification.
* :mod:`repro.synthesis` — templates, datapaths, resources, tuning, DSE,
  and SystemVerilog emission.
* :mod:`repro.eval` — platforms, workloads, and the experiment harness
  that regenerates every table and figure of the paper's evaluation.

Command line: ``python -m repro --help``.
"""

__version__ = "1.0.0"
__paper__ = (
    "Zhaoshi Li, Leibo Liu, Yangdong Deng, Shouyi Yin, Yao Wang, "
    "Shaojun Wei. Aggressive Pipelining of Irregular Applications on "
    "Reconfigurable Hardware. ISCA 2017. doi:10.1145/3079856.3080228"
)
