"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch framework failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SpecificationError(ReproError):
    """An application specification is malformed or inconsistent."""


class EcaSyntaxError(SpecificationError):
    """The ECA rule source text failed to tokenize or parse."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class EcaSemanticError(SpecificationError):
    """The ECA rule parsed but refers to unknown names or lacks clauses."""


class LoweringError(ReproError):
    """Specification could not be lowered into the BDFG intermediate form."""


class SynthesisError(ReproError):
    """A datapath could not be constructed from templates."""


class ResourceError(SynthesisError):
    """The tuned design does not fit on the target device."""


class SimulationError(ReproError):
    """The cycle-level simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """No component made progress while tasks were still outstanding."""

    def __init__(self, cycle: int, detail: str = "") -> None:
        self.cycle = cycle
        message = f"simulated accelerator deadlocked at cycle {cycle}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class InvariantViolation(SimulationError):
    """A runtime invariant check (sanitizer) failed.

    Raised by the invariant checker long before the deadlock window would
    fire, with the cycle, the violated invariant, and the component.
    """

    def __init__(
        self, cycle: int, invariant: str, component: str, detail: str = ""
    ) -> None:
        self.cycle = cycle
        self.invariant = invariant
        self.component = component
        self.detail = detail
        message = (
            f"invariant {invariant!r} violated at cycle {cycle} "
            f"in {component}"
        )
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class RecoveryExhaustedError(SimulationError):
    """Checkpoint/rollback recovery ran out of retry attempts."""

    def __init__(self, attempts: int, failures: list[str]) -> None:
        self.attempts = attempts
        self.failures = failures
        summary = "; ".join(failures[-3:]) if failures else "no failures"
        super().__init__(
            f"recovery exhausted after {attempts} attempts ({summary})"
        )


class SchedulingError(ReproError):
    """The software runtime scheduler violated an ordering invariant."""


class InputError(ReproError):
    """A workload input (graph, mesh, matrix) is invalid."""
